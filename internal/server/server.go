// Package server exposes a model lake over HTTP — the open-platform face of
// the paper's Figure 2, where users (or agents) interact with the lake
// through search, declarative queries, version graphs, generated
// documentation, audits, and citations rather than a local API.
//
// The API is JSON over GET/POST with Go 1.22 pattern routing:
//
//	GET  /healthz                         liveness (process up)
//	GET  /readyz                          readiness (store open, index built)
//	GET  /v1/models                       list catalog records
//	POST /v1/models                       ingest a model (JSON body)
//	POST /v1/models/batch                 batch ingest via the parallel pipeline
//	GET  /v1/models/{id}                  one record
//	GET  /v1/models/{id}/card             model card (?format=markdown)
//	GET  /v1/models/{id}/cite             version-anchored citation
//	GET  /v1/models/{id}/draft            docgen card draft
//	GET  /v1/models/{id}/audit            audit report (?flag=id=reason, repeatable)
//	GET  /v1/models/{id}/provenance       why-provenance
//	GET  /v1/search?q=&k=                 keyword search
//	GET  /v1/related?id=&space=&k=        model-as-query search
//	POST /v1/related/batch                batched model-as-query search
//	GET  /v1/query?q=                     MLQL
//	GET  /v1/graph                        recovered version graph
//	GET  /v1/cluster/status               per-shard health and replica lag
//
// The server fronts anything implementing LakeAPI — a single embedded
// *lake.Lake or a sharded *cluster.Cluster — and can start serving before
// the lake finishes opening: NewOpening binds the routes immediately and
// /readyz answers 503 "opening" until Attach hands over the opened lake, so
// a long WAL replay or index rehydrate never reports ready just because the
// listener bound.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"modellake/internal/card"
	"modellake/internal/cluster"
	"modellake/internal/lake"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/obs"
	"modellake/internal/registry"
	"modellake/internal/search"
)

// Config tunes the serving-hardening layer wrapped around the lake
// handlers. The zero value of a field falls back to the DefaultConfig
// value only through New; NewWith takes the config verbatim so zero can
// mean "disabled".
type Config struct {
	// RequestTimeout bounds each request's handler time; requests that
	// exceed it get 504 and their lake work is canceled via the request
	// context. Zero disables the per-request deadline.
	RequestTimeout time.Duration
	// MaxInflight caps concurrently served requests; excess requests are
	// shed with 429 + Retry-After. Zero disables the limiter.
	MaxInflight int
	// MaxBodyBytes caps the ingest request body. Zero means the 64 MiB
	// default.
	MaxBodyBytes int64
	// Logger receives panic stacks and lifecycle messages; nil logs to
	// stderr.
	Logger *log.Logger
	// AccessLog receives one structured JSON line per request (see
	// obs.AccessEntry). Nil disables access logging.
	AccessLog io.Writer
	// Metrics is the registry behind GET /metrics and the per-request
	// instrumentation; nil uses obs.Default(), which is also where the
	// storage and search layers record, so the default aggregates the whole
	// stack.
	Metrics *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/*. Off by
	// default: profiling endpoints expose internals and belong behind an
	// explicit operator decision.
	EnablePprof bool
}

// DefaultConfig is the hardening applied by New: generous enough for every
// lake task, tight enough that a stuck query or a stampede degrades loudly.
func DefaultConfig() Config {
	return Config{
		RequestTimeout: 30 * time.Second,
		MaxInflight:    256,
		MaxBodyBytes:   64 << 20,
	}
}

// Server serves one lake — or, before Attach, the promise of one.
type Server struct {
	// box holds the attached LakeAPI. It is nil between NewOpening and
	// Attach, during which /healthz serves, /readyz reports "opening", and
	// data routes shed with 503. Attach is monotone: once set, never
	// cleared, so a handler that observed a non-nil lake may keep using it.
	box      atomic.Pointer[LakeAPI]
	cfg      Config
	log      *log.Logger
	metrics  *obs.Registry
	access   *obs.AccessLog
	draining atomic.Bool
}

// New wraps a lake with the default hardening config.
func New(lk LakeAPI) *Server { return NewWith(lk, DefaultConfig()) }

// NewWith wraps a lake with an explicit config.
func NewWith(lk LakeAPI, cfg Config) *Server {
	s := NewOpening(cfg)
	if lk != nil {
		s.Attach(lk)
	}
	return s
}

// NewOpening builds a server with no lake attached yet, so the listener can
// bind (and liveness probes pass) while the lake replays its log in the
// background. Call Attach when the open completes.
func NewOpening(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(os.Stderr, "modellake: ", log.LstdFlags)
	}
	metrics := cfg.Metrics
	if metrics == nil {
		metrics = obs.Default()
	}
	return &Server{
		cfg: cfg, log: logger,
		metrics: metrics,
		access:  obs.NewAccessLog(cfg.AccessLog),
	}
}

// Attach hands the opened lake (or cluster) to the server; /readyz starts
// consulting its Ready method and data routes begin serving.
func (s *Server) Attach(lk LakeAPI) { s.box.Store(&lk) }

// lake returns the attached LakeAPI, or nil while still opening.
func (s *Server) lake() LakeAPI {
	if p := s.box.Load(); p != nil {
		return *p
	}
	return nil
}

// Drain flips /readyz to 503 so load balancers stop routing new traffic
// here, while in-flight (and even new) requests still complete. Call it
// before http.Server.Shutdown for a clean connection drain.
func (s *Server) Drain() { s.draining.Store(true) }

// Handler returns the routed HTTP handler wrapped in the middleware stack:
// observation (request ID, metrics, access log) outermost so it sees every
// request's final status, then panic recovery, then load shedding, then the
// per-request timeout.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Data routes shed with 503 until a lake is attached. The guard is
	// monotone-safe: the lake is never detached, so a handler that passed
	// the check can load it again without re-checking.
	v1 := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if s.lake() == nil {
				s.writeJSON(w, http.StatusServiceUnavailable, httpError{Error: "lake is opening"})
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /v1/models", v1(s.handleListModels))
	mux.HandleFunc("POST /v1/models", v1(s.handleIngest))
	mux.HandleFunc("POST /v1/models/batch", v1(s.handleIngestBatch))
	mux.HandleFunc("GET /v1/models/{id}", v1(s.handleModel))
	mux.HandleFunc("GET /v1/models/{id}/card", v1(s.handleCard))
	mux.HandleFunc("GET /v1/models/{id}/cite", v1(s.handleCite))
	mux.HandleFunc("GET /v1/models/{id}/draft", v1(s.handleDraft))
	mux.HandleFunc("GET /v1/models/{id}/audit", v1(s.handleAudit))
	mux.HandleFunc("GET /v1/models/{id}/provenance", v1(s.handleProvenance))
	mux.HandleFunc("GET /v1/search", v1(s.handleSearch))
	mux.HandleFunc("GET /v1/related", v1(s.handleRelated))
	mux.HandleFunc("POST /v1/related/batch", v1(s.handleRelatedBatch))
	mux.HandleFunc("GET /v1/query", v1(s.handleQuery))
	mux.HandleFunc("GET /v1/graph", v1(s.handleGraph))
	mux.HandleFunc("GET /v1/cluster/status", v1(s.handleClusterStatus))
	var h http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		h = timeoutMiddleware(s.cfg.RequestTimeout, h)
	}
	if s.cfg.MaxInflight > 0 {
		h = limitMiddleware(s.cfg.MaxInflight, h)
	}
	return s.observeMiddleware(recoverMiddleware(s.log, h))
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

// writeJSON encodes v with the given status. Encode failures after the
// header is written cannot change the response, but they must not vanish
// either: they are logged (to logger, or the process default when nil) and
// counted, because a response the client could not parse is an error even
// when the handler succeeded.
func writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONLogged(w, status, v, nil)
}

func writeJSONLogged(w http.ResponseWriter, status int, v any, logger *log.Logger) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		mEncodeErrs.Inc()
		if logger == nil {
			logger = log.Default()
		}
		logger.Printf("response encode failed (status %d): %v", status, err)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONLogged(w, status, v, s.log)
}

// writeErr maps a lake error to its HTTP status. Context errors are not
// internal faults: an expired deadline is a gateway timeout (504) and a
// canceled request means the client went away (408, the closest standard
// status to nginx's 499 client-closed-request); both feed the timeout
// counter so slow-query pressure is visible before users complain.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, registry.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, registry.ErrDuplicate):
		status = http.StatusConflict
	case errors.Is(err, cluster.ErrLeaderDown):
		// A dead shard leader is a temporary availability gap, not a client
		// mistake: 503 + Retry-After so well-behaved writers back off and
		// retry once the leader returns.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		timeoutCounter("deadline").Inc()
	case errors.Is(err, context.Canceled):
		status = http.StatusRequestTimeout
		timeoutCounter("canceled").Inc()
	}
	s.writeJSON(w, status, httpError{Error: err.Error()})
}

func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf(format, args...)})
}

// intParamStrict parses an optional positive integer query parameter. An
// absent parameter yields the default; a malformed or non-positive value is
// the caller's 400, never a silent fallback — ?k=abc quietly meaning k=10
// hides client bugs behind plausible responses.
func intParamStrict(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("query parameter %s=%q is not an integer", name, v)
	}
	if n <= 0 {
		return 0, fmt.Errorf("query parameter %s must be a positive integer, got %d", name, n)
	}
	return n, nil
}

// handleHealth is pure liveness: it answers 200 whenever the process can
// serve HTTP at all, touching nothing that could block or fail.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReady is readiness: 200 only when the lake can actually answer
// queries (store open, indexes rehydrated) and the server is not draining.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	lk := s.lake()
	if lk == nil {
		// The listener is up but the lake is still replaying its log /
		// rehydrating indexes; report opening, not ready, so load balancers
		// hold traffic until the store can actually answer.
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "opening"})
		return
	}
	if err := lk.Ready(); err != nil {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unready", "error": err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "models": lk.Count()})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	recs, err := s.lake().Records()
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lake().Record(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleCard(w http.ResponseWriter, r *http.Request) {
	c, err := s.lake().Card(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if r.URL.Query().Get("format") == "markdown" {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		fmt.Fprint(w, c.Markdown())
		return
	}
	s.writeJSON(w, http.StatusOK, c)
}

func (s *Server) handleCite(w http.ResponseWriter, r *http.Request) {
	c, err := s.lake().Cite(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"citation": c, "text": c.String()})
}

func (s *Server) handleDraft(w http.ResponseWriter, r *http.Request) {
	d, err := s.lake().GenerateCardContext(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"card": d.Card, "evidence": d.Evidence, "flags": d.Flags,
	})
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	flagged := map[string]string{}
	for _, f := range r.URL.Query()["flag"] {
		parts := strings.SplitN(f, "=", 2)
		reason := "flagged"
		if len(parts) == 2 {
			reason = parts[1]
		}
		flagged[parts[0]] = reason
	}
	rep, err := s.lake().AuditContext(r.Context(), r.PathValue("id"), flagged)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	ex, err := s.lake().ProvenanceWhy("model:" + r.PathValue("id"))
	if err != nil {
		s.writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, ex)
}

// handleClusterStatus reports per-shard leader health and replica lag when
// the server fronts a cluster; a single-node lake answers 404 so probes can
// distinguish "not clustered" from "cluster degraded".
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lake().(*cluster.Cluster)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, httpError{Error: "not serving a cluster"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"shards": c.Status()})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.badRequest(w, "missing query parameter q")
		return
	}
	k, err := intParamStrict(r, "k", 10)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	hits, err := s.lake().SearchKeywordContext(r.Context(), q, k)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, hits)
}

// BatchRelatedRequest is the POST /v1/related/batch body: many
// model-as-query searches answered by the lake's fan-out read path (and its
// query-result cache) in one round trip.
type BatchRelatedRequest struct {
	IDs   []string `json:"ids"`
	Space string   `json:"space,omitempty"`
	K     int      `json:"k,omitempty"`
	// Parallelism bounds the search worker pool for this batch; zero uses
	// GOMAXPROCS.
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchRelatedResult reports one query's outcome; exactly one of Hits and
// Error is set.
type BatchRelatedResult struct {
	ID    string       `json:"id"`
	Hits  []search.Hit `json:"hits,omitempty"`
	Error string       `json:"error,omitempty"`
}

func (s *Server) handleRelatedBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRelatedRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, "decode body: %v", err)
		return
	}
	if len(req.IDs) == 0 {
		s.badRequest(w, "ids is required")
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 0 {
		s.badRequest(w, "k must be a positive integer, got %d", k)
		return
	}
	hits, errs := s.lake().SearchByModelMany(r.Context(), req.IDs, req.Space, k, req.Parallelism)
	results := make([]BatchRelatedResult, len(req.IDs))
	failed := 0
	for i, id := range req.IDs {
		results[i].ID = id
		if errs[i] != nil {
			// A context error is the whole request's timeout, not one
			// query's failure — surface it with the right status.
			if errors.Is(errs[i], context.DeadlineExceeded) || errors.Is(errs[i], context.Canceled) {
				s.writeErr(w, errs[i])
				return
			}
			results[i].Error = errs[i].Error()
			failed++
			continue
		}
		results[i].Hits = hits[i]
	}
	status := http.StatusOK
	if failed > 0 {
		status = http.StatusMultiStatus
	}
	s.writeJSON(w, status, map[string]any{"results": results})
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.badRequest(w, "missing query parameter id")
		return
	}
	k, err := intParamStrict(r, "k", 10)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	hits, err := s.lake().SearchByModelContext(r.Context(), id, r.URL.Query().Get("space"), k)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.badRequest(w, "missing query parameter q")
		return
	}
	res, err := s.lake().QueryContext(r.Context(), q)
	if err != nil {
		// A parse or execution error is the client's 400, but a context
		// error means the clock (or the client) killed the query — route it
		// through writeErr so it maps to 504/408, not 400.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeErr(w, err)
			return
		}
		s.badRequest(w, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"query": res.Query.String(), "hits": res.Hits})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	g, err := s.lake().VersionGraphContext(r.Context())
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, g)
}

// IngestRequest is the POST /v1/models body: declared metadata, the card,
// and the model weights in the repository's binary format, base64-encoded.
type IngestRequest struct {
	Name       string         `json:"name"`
	Version    string         `json:"version,omitempty"`
	Tags       []string       `json:"tags,omitempty"`
	Card       *card.Card     `json:"card,omitempty"`
	History    *model.History `json:"history,omitempty"`
	WeightsB64 string         `json:"weights_b64"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				httpError{Error: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)})
			return
		}
		s.badRequest(w, "decode body: %v", err)
		return
	}
	if req.Name == "" {
		s.badRequest(w, "name is required")
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.WeightsB64)
	if err != nil {
		s.badRequest(w, "weights_b64: %v", err)
		return
	}
	net, err := nn.DecodeMLP(raw)
	if err != nil {
		s.badRequest(w, "weights: %v", err)
		return
	}
	m := &model.Model{Name: req.Name, Net: net, Hist: req.History}
	rec, err := s.lake().IngestContext(r.Context(), m, req.Card, registry.RegisterOptions{
		Name: req.Name, Version: req.Version, Tags: req.Tags,
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, rec)
}

// BatchIngestRequest is the POST /v1/models/batch body: many ingest
// requests served by the lake's parallel ingest pipeline.
type BatchIngestRequest struct {
	Models []IngestRequest `json:"models"`
	// Parallelism bounds the embedding worker pool for this batch; zero
	// uses the lake's configured default.
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchIngestResult reports one model's outcome; exactly one of Record and
// Error is set.
type BatchIngestResult struct {
	Record *registry.Record `json:"record,omitempty"`
	Error  string           `json:"error,omitempty"`
}

func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchIngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				httpError{Error: fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)})
			return
		}
		s.badRequest(w, "decode body: %v", err)
		return
	}
	if len(req.Models) == 0 {
		s.badRequest(w, "models is required")
		return
	}
	items := make([]lake.IngestItem, len(req.Models))
	results := make([]BatchIngestResult, len(req.Models))
	for i, mr := range req.Models {
		if mr.Name == "" {
			results[i].Error = "name is required"
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(mr.WeightsB64)
		if err != nil {
			results[i].Error = fmt.Sprintf("weights_b64: %v", err)
			continue
		}
		net, err := nn.DecodeMLP(raw)
		if err != nil {
			results[i].Error = fmt.Sprintf("weights: %v", err)
			continue
		}
		items[i] = lake.IngestItem{
			Model: &model.Model{Name: mr.Name, Net: net, Hist: mr.History},
			Card:  mr.Card,
			Opts:  registry.RegisterOptions{Name: mr.Name, Version: mr.Version, Tags: mr.Tags},
		}
	}
	// Compact out the malformed entries, ingest the rest as one batch, then
	// scatter records and errors back to their original positions.
	var valid []lake.IngestItem
	var pos []int
	for i := range items {
		if results[i].Error == "" {
			valid = append(valid, items[i])
			pos = append(pos, i)
		}
	}
	recs, errs := s.lake().IngestAllContext(r.Context(), valid, req.Parallelism)
	created := 0
	for j, i := range pos {
		if errs[j] != nil {
			// A batch rejected because the request's own context died is a
			// timeout for the whole request, not a per-item failure: route
			// it through writeErr so it maps to 504/408.
			if errors.Is(errs[j], context.DeadlineExceeded) || errors.Is(errs[j], context.Canceled) {
				s.writeErr(w, errs[j])
				return
			}
			results[i].Error = errs[j].Error()
			continue
		}
		results[i].Record = recs[j]
		created++
	}
	status := http.StatusCreated
	if created < len(req.Models) {
		status = http.StatusMultiStatus
	}
	s.writeJSON(w, status, map[string]any{"created": created, "results": results})
}

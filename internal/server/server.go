// Package server exposes a model lake over HTTP — the open-platform face of
// the paper's Figure 2, where users (or agents) interact with the lake
// through search, declarative queries, version graphs, generated
// documentation, audits, and citations rather than a local API.
//
// The API is JSON over GET/POST with Go 1.22 pattern routing:
//
//	GET  /healthz                         liveness
//	GET  /v1/models                       list catalog records
//	POST /v1/models                       ingest a model (JSON body)
//	GET  /v1/models/{id}                  one record
//	GET  /v1/models/{id}/card             model card (?format=markdown)
//	GET  /v1/models/{id}/cite             version-anchored citation
//	GET  /v1/models/{id}/draft            docgen card draft
//	GET  /v1/models/{id}/audit            audit report (?flag=id=reason, repeatable)
//	GET  /v1/models/{id}/provenance       why-provenance
//	GET  /v1/search?q=&k=                 keyword search
//	GET  /v1/related?id=&space=&k=        model-as-query search
//	GET  /v1/query?q=                     MLQL
//	GET  /v1/graph                        recovered version graph
package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"modellake/internal/card"
	"modellake/internal/lake"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/registry"
)

// Server serves one lake.
type Server struct {
	lk *lake.Lake
}

// New wraps a lake.
func New(lk *lake.Lake) *Server { return &Server{lk: lk} }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/models", s.handleListModels)
	mux.HandleFunc("POST /v1/models", s.handleIngest)
	mux.HandleFunc("GET /v1/models/{id}", s.handleModel)
	mux.HandleFunc("GET /v1/models/{id}/card", s.handleCard)
	mux.HandleFunc("GET /v1/models/{id}/cite", s.handleCite)
	mux.HandleFunc("GET /v1/models/{id}/draft", s.handleDraft)
	mux.HandleFunc("GET /v1/models/{id}/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/models/{id}/provenance", s.handleProvenance)
	mux.HandleFunc("GET /v1/search", s.handleSearch)
	mux.HandleFunc("GET /v1/related", s.handleRelated)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/graph", s.handleGraph)
	return mux
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, registry.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, registry.ErrDuplicate):
		status = http.StatusConflict
	}
	writeJSON(w, status, httpError{Error: err.Error()})
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf(format, args...)})
}

func intParam(r *http.Request, name string, def int) int {
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.lk.Count()})
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	recs, err := s.lk.Records()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, recs)
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.lk.Record(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleCard(w http.ResponseWriter, r *http.Request) {
	c, err := s.lk.Card(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	if r.URL.Query().Get("format") == "markdown" {
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		fmt.Fprint(w, c.Markdown())
		return
	}
	writeJSON(w, http.StatusOK, c)
}

func (s *Server) handleCite(w http.ResponseWriter, r *http.Request) {
	c, err := s.lk.Cite(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"citation": c, "text": c.String()})
}

func (s *Server) handleDraft(w http.ResponseWriter, r *http.Request) {
	d, err := s.lk.GenerateCard(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"card": d.Card, "evidence": d.Evidence, "flags": d.Flags,
	})
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	flagged := map[string]string{}
	for _, f := range r.URL.Query()["flag"] {
		parts := strings.SplitN(f, "=", 2)
		reason := "flagged"
		if len(parts) == 2 {
			reason = parts[1]
		}
		flagged[parts[0]] = reason
	}
	rep, err := s.lk.Audit(r.PathValue("id"), flagged)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	ex, err := s.lk.Provenance().Why("model:" + r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	hits := s.lk.SearchKeyword(q, intParam(r, "k", 10))
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		badRequest(w, "missing query parameter id")
		return
	}
	hits, err := s.lk.SearchByModel(id, r.URL.Query().Get("space"), intParam(r, "k", 10))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	res, err := s.lk.Query(q)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"query": res.Query.String(), "hits": res.Hits})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	g, err := s.lk.VersionGraph()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// IngestRequest is the POST /v1/models body: declared metadata, the card,
// and the model weights in the repository's binary format, base64-encoded.
type IngestRequest struct {
	Name       string         `json:"name"`
	Version    string         `json:"version,omitempty"`
	Tags       []string       `json:"tags,omitempty"`
	Card       *card.Card     `json:"card,omitempty"`
	History    *model.History `json:"history,omitempty"`
	WeightsB64 string         `json:"weights_b64"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		badRequest(w, "decode body: %v", err)
		return
	}
	if req.Name == "" {
		badRequest(w, "name is required")
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.WeightsB64)
	if err != nil {
		badRequest(w, "weights_b64: %v", err)
		return
	}
	net, err := nn.DecodeMLP(raw)
	if err != nil {
		badRequest(w, "weights: %v", err)
		return
	}
	m := &model.Model{Name: req.Name, Net: net, Hist: req.History}
	rec, err := s.lk.Ingest(m, req.Card, registry.RegisterOptions{
		Name: req.Name, Version: req.Version, Tags: req.Tags,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, rec)
}

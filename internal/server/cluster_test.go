package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modellake/internal/card"
	"modellake/internal/cluster"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/nn"
	"modellake/internal/registry"
)

// TestServerReportsOpeningUntilAttach covers the deferred-open serving path:
// routes are bound and answering before the lake exists, /readyz says
// "opening" (not ready) until Attach, and data routes shed instead of
// panicking on a nil lake.
func TestServerReportsOpeningUntilAttach(t *testing.T) {
	srv := NewOpening(DefaultConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Liveness is about the process, not the store: 200 while opening.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz while opening = %d, want 200", code)
	}
	var ready map[string]any
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while opening = %d, want 503", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready["status"] != "opening" {
		t.Fatalf("/readyz status = %q, want \"opening\"", ready["status"])
	}
	for _, route := range []string{"/v1/models", "/v1/search?q=x", "/v1/graph"} {
		if code := getJSON(t, ts.URL+route, nil); code != http.StatusServiceUnavailable {
			t.Fatalf("%s while opening = %d, want 503", route, code)
		}
	}

	lk, err := lake.Open(lake.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	srv.Attach(lk)

	var st map[string]any
	if code := getJSON(t, ts.URL+"/readyz", &st); code != http.StatusOK {
		t.Fatalf("/readyz after Attach = %d, want 200", code)
	}
	if st["status"] != "ready" {
		t.Fatalf("/readyz status after Attach = %q, want \"ready\"", st["status"])
	}
	if code := getJSON(t, ts.URL+"/v1/models", nil); code != http.StatusOK {
		t.Fatalf("/v1/models after Attach = %d, want 200", code)
	}
	// A single-node lake is not a cluster; the status probe must say so.
	if code := getJSON(t, ts.URL+"/v1/cluster/status", nil); code != http.StatusNotFound {
		t.Fatalf("/v1/cluster/status on single node = %d, want 404", code)
	}
}

// TestServerFrontsCluster serves a sharded cluster through the same HTTP
// surface: normal reads work, /v1/cluster/status reports shard health, and a
// write to a shard with a dead leader surfaces as 503, not 500.
func TestServerFrontsCluster(t *testing.T) {
	c, err := cluster.Open(cluster.Config{
		Dir:      t.TempDir(),
		Shards:   2,
		Replicas: 1,
		Lake:     lake.Config{Sync: true, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := lakegen.DefaultSpec(801)
	spec.NumBases = 2
	spec.ChildrenPerBase = 1
	pop, err := lakegen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range pop.Datasets {
		if err := c.RegisterDataset(ds); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for _, m := range pop.Members {
		rec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}

	ts := httptest.NewServer(New(c).Handler())
	defer ts.Close()

	var ready map[string]any
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if int(ready["models"].(float64)) != len(ids) {
		t.Fatalf("/readyz models = %v, want %d", ready["models"], len(ids))
	}
	var recs []registry.Record
	if code := getJSON(t, ts.URL+"/v1/models", &recs); code != http.StatusOK || len(recs) != len(ids) {
		t.Fatalf("/v1/models = %d with %d records, want 200 with %d", len(recs), len(recs), len(ids))
	}
	var rec registry.Record
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[0], &rec); code != http.StatusOK || rec.ID != ids[0] {
		t.Fatalf("/v1/models/%s = %d %+v", ids[0], code, rec)
	}

	var status struct {
		Shards []cluster.ShardStatus `json:"shards"`
	}
	if code := getJSON(t, ts.URL+"/v1/cluster/status", &status); code != http.StatusOK {
		t.Fatalf("/v1/cluster/status = %d, want 200", code)
	}
	if len(status.Shards) != 2 {
		t.Fatalf("cluster status reports %d shards, want 2", len(status.Shards))
	}
	for _, st := range status.Shards {
		if !st.LeaderUp {
			t.Fatalf("shard %d leader down in healthy cluster", st.Shard)
		}
	}

	// First kill: the shard has a caught-up replica, so the kill triggers
	// automatic promotion. Reads answer the same, the status endpoint shows
	// the replica leading under a bumped epoch, and writes keep succeeding
	// without any restart. Flush first so the replica is caught up.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatal(err)
	}
	target := c.OwnerOf(ids[0])
	c.KillShardLeader(target)
	if code := getJSON(t, ts.URL+"/v1/models/"+ids[0], &rec); code != http.StatusOK || rec.ID != ids[0] {
		t.Fatalf("read after promotion over HTTP = %d %+v", code, rec)
	}
	if code := getJSON(t, ts.URL+"/v1/cluster/status", &status); code != http.StatusOK {
		t.Fatalf("/v1/cluster/status after promotion = %d", code)
	}
	for _, st := range status.Shards {
		if st.Shard != target {
			continue
		}
		if !st.LeaderUp || st.Leader != "replica0" || st.Epoch != 1 {
			t.Fatalf("shard %d status after kill = %+v, want promoted leader replica0 at epoch 1", target, st)
		}
	}
	for i := 0; i < 4; i++ {
		if code, body := postIngest(t, ts.URL, pop, i); code != http.StatusCreated {
			t.Fatalf("ingest after promotion = %d (%s), want 201 — the promoted leader must accept writes", code, body)
		}
	}

	// Second kill: the promoted leader dies too, and with its slot vacant
	// there is no candidate left. Now the outage is real — writes routed to
	// the shard surface as 503 ErrLeaderDown, not a 500.
	c.KillShardLeader(target)
	if code := getJSON(t, ts.URL+"/v1/cluster/status", &status); code != http.StatusOK {
		t.Fatalf("/v1/cluster/status during outage = %d", code)
	}
	downSeen := false
	for _, st := range status.Shards {
		if st.Shard == target && !st.LeaderUp {
			downSeen = true
		}
	}
	if !downSeen {
		t.Fatalf("cluster status does not show shard %d leader down: %+v", target, status.Shards)
	}
	saw503 := false
	for i := 4; i < 12 && !saw503; i++ {
		code, body := postIngest(t, ts.URL, pop, i)
		switch code {
		case http.StatusCreated:
		case http.StatusServiceUnavailable:
			saw503 = true
			if !strings.Contains(body, "leader down") {
				t.Fatalf("503 body %q does not mention the dead leader", body)
			}
		default:
			t.Fatalf("ingest during outage = %d (%s), want 201 or 503", code, body)
		}
	}
	if !saw503 {
		t.Fatal("no ingest was rejected with 503 while a shard leader was down")
	}

	// Restart returns both dead nodes: the promoted leader (killed at the
	// current epoch) reopens as leader, and the original leader — deposed by
	// the promotion — rejoins as a replica with its tail truncated.
	if err := c.RestartShardLeader(target); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/v1/cluster/status", &status); code != http.StatusOK {
		t.Fatalf("/v1/cluster/status after restart = %d", code)
	}
	for _, st := range status.Shards {
		if !st.LeaderUp {
			t.Fatalf("shard %d leader still down after restart", st.Shard)
		}
		if st.Shard == target {
			if st.Leader != "replica0" {
				t.Fatalf("shard %d leader after restart = %q, want the rightful leader replica0", target, st.Leader)
			}
			names := make([]string, len(st.Replicas))
			for i, r := range st.Replicas {
				names[i] = r.Name
			}
			if len(names) != 1 || names[0] != "leader" {
				t.Fatalf("shard %d replicas after rejoin = %v, want the deposed node [leader]", target, names)
			}
		}
	}
}

// postIngest uploads one freshly-named model over HTTP and returns the
// status code and body. The cluster mints the ID, so which shard each upload
// lands on varies call to call — callers probe placement by repetition.
func postIngest(t *testing.T, baseURL string, pop *lakegen.Population, i int) (int, string) {
	t.Helper()
	raw, err := nn.EncodeMLP(pop.Members[0].Model.Net.Clone())
	if err != nil {
		t.Fatal(err)
	}
	req := IngestRequest{
		Name:       fmt.Sprintf("outage-upload-%d", i),
		Card:       &card.Card{Name: fmt.Sprintf("outage-upload-%d", i), Domain: "legal", License: "mit"},
		WeightsB64: base64.StdEncoding.EncodeToString(raw),
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

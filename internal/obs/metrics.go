// Package obs is the lake's dependency-free observability layer: a metrics
// registry (counters, gauges, fixed-bucket latency histograms) with
// Prometheus text-format exposition, plus per-request tracing (request ID
// generation/propagation and a structured access log).
//
// The paper's §5 system design puts the indexer and inference services
// behind user-facing query applications; this package is how those
// components report what they are doing — latency, cache behaviour, error
// rates — instead of logging to stderr and hoping.
//
// Metric identity is (name, sorted label set). Get-or-create accessors are
// idempotent: asking for the same counter twice returns the same instance,
// so call sites can look metrics up per operation without caching them.
// Everything is safe for concurrent use; hot-path mutations are single
// atomic operations.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// LatencyBuckets is the default histogram bucketing for operation
// latencies, in seconds: 100µs to 10s, roughly logarithmic. Fine enough to
// separate a cache hit from an fsync, coarse enough to stay cheap.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (e.g. in-flight
// requests).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus style: counts of
// observations at or below each upper bound, plus a running sum and count.
// Observe is lock-free (one atomic add per bucket hit plus a CAS loop for
// the float sum).
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Since records the seconds elapsed since start — the usual way to time an
// operation: defer hist.Since(time.Now()).
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the upper bounds and the cumulative count at or below
// each, Prometheus-style; the final entry is (+Inf, Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}

// metric kinds.
const (
	kindCounter     = "counter"
	kindGauge       = "gauge"
	kindHistogram   = "histogram"
	kindCounterFunc = "counterfunc" // exposed as counter
	kindGaugeFunc   = "gaugefunc"   // exposed as gauge
)

// metric is one (name, labels) series.
type metric struct {
	labels string // canonical rendered label string, "" for none
	kind   string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups every series sharing a metric name; Prometheus requires one
// TYPE per family and consistent kinds within it.
type family struct {
	name    string
	kind    string
	series  map[string]*metric
	buckets []float64 // histogram families: bounds fixed at first creation
}

func (f *family) exposedKind() string {
	switch f.kind {
	case kindCounterFunc:
		return kindCounter
	case kindGaugeFunc:
		return kindGauge
	}
	return f.kind
}

// Registry holds metric families and renders them. The zero value is not
// usable; use NewRegistry or Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level
// instrumentation (kvstore, blob, search, lake, server) records into and
// GET /metrics exposes.
func Default() *Registry { return defaultRegistry }

// renderLabels produces the canonical `{k="v",...}` form (keys sorted,
// values escaped) or "" for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series for (name, labels), creating family and series
// as needed. A kind conflict on an existing family or series panics: two
// call sites disagreeing about what a metric is can only be a bug.
func (r *Registry) lookup(name, kind string, labels []Label, buckets []float64) *metric {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: make(map[string]*metric), buckets: buckets}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	m := f.series[key]
	if m == nil {
		m = &metric{labels: key, kind: kind}
		switch kind {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			m.h = newHistogram(f.buckets)
		}
		f.series[key] = m
	}
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, labels, nil).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, labels, nil).g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use. buckets sets the upper bounds for the whole family the first time any
// series of it is created; nil means LatencyBuckets. Later calls may pass
// nil — the family's established bounds are reused.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return r.lookup(name, kindHistogram, labels, buckets).h
}

// CounterFunc registers (or replaces) a counter whose value is read from fn
// at exposition time — for sources that already count internally, like the
// embedding cache. fn must be safe for concurrent use and monotonic.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...Label) {
	m := r.lookup(name, kindCounterFunc, labels, nil)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers (or replaces) a gauge whose value is read from fn at
// exposition time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	m := r.lookup(name, kindGaugeFunc, labels, nil)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// snapshotFamilies copies the family list under the lock so rendering can
// run without holding it (func metrics call arbitrary code).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*metric {
	ms := make([]*metric, 0, len(f.series))
	for _, m := range f.series {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].labels < ms[j].labels })
	return ms
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label set,
// so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.exposedKind()); err != nil {
			return err
		}
		for _, m := range f.sortedSeries() {
			if err := writeSeries(w, f.name, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, m.labels, m.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, m.labels, m.g.Value())
		return err
	case kindCounterFunc, kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, m.labels, formatFloat(m.fn()))
		return err
	case kindHistogram:
		bounds, cum := m.h.Buckets()
		for i, b := range bounds {
			le := L("le", formatFloat(b))
			lbl := mergeLabels(m.labels, le)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, m.labels, formatFloat(m.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, m.labels, m.h.Count())
		return err
	}
	return nil
}

// mergeLabels appends extra labels to an already-rendered label string.
// Prometheus puts histogram "le" last by convention, which this preserves.
func mergeLabels(rendered string, extra Label) string {
	pair := extra.Key + `="` + escapeLabelValue(extra.Value) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// BucketSnapshot is one cumulative histogram bucket in a Snapshot.
type BucketSnapshot struct {
	LE    string `json:"le"` // upper bound; "+Inf" for the overflow bucket
	Count uint64 `json:"count"`
}

// MetricSnapshot is one series' point-in-time value, JSON-friendly — the
// payload behind lakebench's -metrics-json artifact.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Type    string           `json:"type"`
	Labels  string           `json:"labels,omitempty"` // canonical {k="v"} form
	Value   float64          `json:"value,omitempty"`
	Count   uint64           `json:"count,omitempty"` // histograms
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot returns every series' current value, ordered like
// WritePrometheus.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for _, f := range r.snapshotFamilies() {
		for _, m := range f.sortedSeries() {
			s := MetricSnapshot{Name: f.name, Type: f.exposedKind(), Labels: m.labels}
			switch m.kind {
			case kindCounter:
				s.Value = float64(m.c.Value())
			case kindGauge:
				s.Value = float64(m.g.Value())
			case kindCounterFunc, kindGaugeFunc:
				s.Value = m.fn()
			case kindHistogram:
				s.Count = m.h.Count()
				s.Sum = m.h.Sum()
				bounds, cum := m.h.Buckets()
				s.Buckets = make([]BucketSnapshot, len(bounds))
				for i := range bounds {
					s.Buckets[i] = BucketSnapshot{LE: formatFloat(bounds[i]), Count: cum[i]}
				}
			}
			out = append(out, s)
		}
	}
	return out
}

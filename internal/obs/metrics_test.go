package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("route", "/a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) → same instance; different labels → different.
	if r.Counter("reqs_total", L("route", "/a")) != c {
		t.Fatal("get-or-create returned a different counter for identical labels")
	}
	if r.Counter("reqs_total", L("route", "/b")) == c {
		t.Fatal("distinct labels shared a counter")
	}

	g := r.Gauge("inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge after Set = %d, want 42", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

// TestHistogramBucketing pins the bucket-assignment rule: an observation
// lands in the first bucket whose upper bound is >= the value (Prometheus
// "le" semantics), values above every bound land in +Inf.
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.02, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v, want 3 finite + +Inf", bounds)
	}
	// 0.005 and 0.01 are <= 0.01; 0.02 and 0.1 are <= 0.1; 0.5 and (not 2,
	// not 100) are <= 1; everything is <= +Inf.
	want := []uint64{2, 4, 5, 7}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (all: %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.02+0.1+0.5+2+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 8 {
		t.Fatalf("ObserveDuration did not record")
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this pins the lock-free hot path.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.5})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.25)
				// Concurrent get-or-create of the same series must race
				// cleanly too.
				r.Counter("c_total").Add(0)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if got, want := h.Sum(), 0.25*workers*perWorker; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

// TestPrometheusExposition is the golden test for the text format: families
// sorted by name, TYPE lines, label escaping, cumulative histogram buckets
// with le, _sum and _count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_requests_total", L("route", "/v1/search"), L("class", "2xx")).Add(3)
	r.Gauge("c_inflight").Set(2)
	h := r.Histogram("a_latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("d_cache_hits", func() float64 { return 7 })
	r.Counter("e_weird_total", L("q", `a"b\c`)).Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_latency_seconds histogram",
		`a_latency_seconds_bucket{le="0.1"} 1`,
		`a_latency_seconds_bucket{le="1"} 2`,
		`a_latency_seconds_bucket{le="+Inf"} 3`,
		"a_latency_seconds_sum 5.55",
		"a_latency_seconds_count 3",
		"# TYPE b_requests_total counter",
		`b_requests_total{class="2xx",route="/v1/search"} 3`,
		"# TYPE c_inflight gauge",
		"c_inflight 2",
		"# TYPE d_cache_hits gauge",
		"d_cache_hits 7",
		"# TYPE e_weird_total counter",
		`e_weird_total{q="a\"b\\c"} 1`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", L("op", "put")).Add(9)
	h := r.Histogram("lat_seconds", []float64{1})
	h.Observe(0.5)
	r.CounterFunc("hits_total", func() float64 { return 3 })

	snap := r.Snapshot()
	byName := map[string]MetricSnapshot{}
	for _, s := range snap {
		byName[s.Name] = s
	}
	if s := byName["ops_total"]; s.Value != 9 || s.Type != "counter" || s.Labels != `{op="put"}` {
		t.Fatalf("ops_total snapshot = %+v", s)
	}
	if s := byName["hits_total"]; s.Value != 3 || s.Type != "counter" {
		t.Fatalf("hits_total snapshot = %+v", s)
	}
	s := byName["lat_seconds"]
	if s.Count != 1 || s.Sum != 0.5 || len(s.Buckets) != 2 {
		t.Fatalf("lat_seconds snapshot = %+v", s)
	}
	if s.Buckets[0].Count != 1 || s.Buckets[1].LE != "+Inf" {
		t.Fatalf("lat_seconds buckets = %+v", s.Buckets)
	}
}

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: every request gets an ID (accepted from the client's
// X-Request-ID or generated), the ID travels down the call tree in the
// context, and the access log stamps it on the one structured line each
// request produces. Correlating a slow query, its log line, and a client
// report then takes one grep.

type ctxKey int

const requestIDKey ctxKey = iota

// reqSeq backs NewRequestID when crypto/rand is unavailable (it essentially
// never is, but an ID generator must not be able to fail).
var reqSeq atomic.Uint64

// NewRequestID returns a 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "" when there is none.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// AccessEntry is one request's structured access-log record.
type AccessEntry struct {
	Time       time.Time `json:"ts"`
	RequestID  string    `json:"id"`
	Remote     string    `json:"remote,omitempty"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Route      string    `json:"route"` // normalized route pattern, bounded cardinality
	Status     int       `json:"status"`
	Bytes      int64     `json:"bytes"`
	DurationMS float64   `json:"dur_ms"`
}

// AccessLog writes one JSON object per line per request. Writes are
// serialized so concurrent requests never interleave bytes. A nil *AccessLog
// is a valid no-op logger, so call sites need no nil checks.
type AccessLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewAccessLog returns an access log writing to w; a nil w yields a no-op
// logger.
func NewAccessLog(w io.Writer) *AccessLog {
	if w == nil {
		return nil
	}
	return &AccessLog{w: w}
}

// Log writes one entry. Encoding an AccessEntry cannot fail; a write error
// is dropped — an access log must never take down serving.
func (a *AccessLog) Log(e AccessEntry) {
	if a == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	_, _ = a.w.Write(line)
	a.mu.Unlock()
}

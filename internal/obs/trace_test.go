package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestRequestIDGenerationAndPropagation(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs %q, %q: want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two generated IDs collided: %q", a)
	}
	ctx := WithRequestID(context.Background(), a)
	if got := RequestID(ctx); got != a {
		t.Fatalf("RequestID(ctx) = %q, want %q", got, a)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
}

func TestAccessLogWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLog(&buf)
	al.Log(AccessEntry{
		Time: time.Unix(0, 0).UTC(), RequestID: "abcd", Method: "GET",
		Path: "/v1/search", Route: "/v1/search", Status: 200, Bytes: 17,
		DurationMS: 1.25, Remote: "127.0.0.1:9",
	})
	line := buf.String()
	if line[len(line)-1] != '\n' {
		t.Fatal("access log line not newline-terminated")
	}
	var e AccessEntry
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, line)
	}
	if e.RequestID != "abcd" || e.Status != 200 || e.Route != "/v1/search" || e.DurationMS != 1.25 {
		t.Fatalf("round-tripped entry = %+v", e)
	}
}

func TestNilAccessLogIsNoop(t *testing.T) {
	var al *AccessLog
	al.Log(AccessEntry{}) // must not panic
	if NewAccessLog(nil) != nil {
		t.Fatal("NewAccessLog(nil) should return the no-op nil logger")
	}
}

package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestScriptFailsNthOp(t *testing.T) {
	inj := &Script{FailAt: 2}
	fs := New(inj)
	dir := t.TempDir()
	f, err := fs.OpenFile(filepath.Join(dir, "a"), os.O_RDWR|os.O_CREATE, 0o644) // op 1
	if err != nil {
		t.Fatalf("op 1 failed: %v", err)
	}
	if _, err := f.Write([]byte("x")); err == nil { // op 2 → injected
		t.Fatal("op 2 should fail")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("not an injected error: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 3 fine (not sticky)
		t.Fatalf("op 3 failed: %v", err)
	}
	f.Close()
	if inj.Seen() != 4 {
		t.Fatalf("seen = %d, want 4", inj.Seen())
	}
}

func TestStickyScriptKeepsFailing(t *testing.T) {
	inj := &Script{FailAt: 1, Sticky: true, Match: MatchOps(OpWrite)}
	fs := New(inj)
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open should not match: %v", err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); err == nil {
			t.Fatalf("write %d should fail", i)
		}
	}
}

func TestTornWriteLeavesPrefix(t *testing.T) {
	inj := &Script{FailAt: 1, Torn: 3, Match: MatchOps(OpWrite)}
	fs := New(inj)
	path := filepath.Join(t.TempDir(), "a")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello world"))
	if err == nil {
		t.Fatal("write should fail")
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes, want 3", n)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hel" {
		t.Fatalf("file holds %q, want torn prefix %q", got, "hel")
	}
}

func TestRecorderEnumeratesOps(t *testing.T) {
	rec := &Recorder{}
	fs := New(rec)
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	if err := fs.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	want := []Op{OpOpen, OpWrite, OpSync, OpClose, OpRename, OpSyncDir}
	ops := rec.Ops()
	if len(ops) != len(want) {
		t.Fatalf("recorded %d ops, want %d: %v", len(ops), len(want), ops)
	}
	for i, w := range want {
		if ops[i].Op != w {
			t.Fatalf("op %d = %s, want %s", i, ops[i].Op, w)
		}
	}
}

func TestNilFSIsPassthrough(t *testing.T) {
	var fs *FS
	path := filepath.Join(t.TempDir(), "a")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyInjection(t *testing.T) {
	inj := &Script{Delay: 20 * time.Millisecond, Match: MatchOps(OpWrite)}
	fs := New(inj)
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "a"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("write returned in %v, want >= 20ms of injected latency", d)
	}
}

func TestTransientErrClassification(t *testing.T) {
	e := &Err{Op: OpWrite, Path: "x", Transient: true}
	var tr interface{ IsTransient() bool }
	if !errors.As(error(e), &tr) || !tr.IsTransient() {
		t.Fatal("transient fault not classified as transient")
	}
}

// Package fault provides deterministic IO fault injection for the lake's
// storage layers. The durable stores (internal/kvstore, internal/blob) route
// every file operation through an *FS, which consults an optional Injector
// before touching the real filesystem. Tests enumerate a workload's fault
// points with a Recorder, then replay the workload failing each point in
// turn (error-at-Nth-op, torn write, rename failure, fsync failure, added
// latency) and assert the store recovers — the crash-window sweep behind the
// lake's durability guarantees.
//
// A nil *FS (or an FS with a nil Injector) is a zero-cost passthrough, so
// production code pays nothing for the hook.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"modellake/internal/obs"
)

// Op classifies a file operation reaching the FS.
type Op string

// The injectable operation classes.
const (
	OpOpen     Op = "open"     // OpenFile
	OpCreate   Op = "create"   // CreateTemp
	OpMkdir    Op = "mkdir"    // MkdirAll
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "sync"     // File.Sync
	OpClose    Op = "close"    // File.Close
	OpTruncate Op = "truncate" // File.Truncate
	OpRename   Op = "rename"   // Rename
	OpRemove   Op = "remove"   // Remove
	OpSyncDir  Op = "syncdir"  // SyncDir (directory fsync after rename)
)

// ErrInjected is the sentinel every injected failure wraps; test code can
// distinguish injected faults from real IO errors with errors.Is.
var ErrInjected = errors.New("fault: injected error")

// Err is one injected failure.
type Err struct {
	Op   Op
	Path string
	// Torn applies to OpWrite: that many bytes of the buffer reach the
	// file before the failure, simulating a torn write. Zero means the
	// write fails cleanly with nothing written.
	Torn int
	// Transient marks the fault retryable: Err implements IsTransient,
	// which internal/retry uses to classify errors.
	Transient bool
}

func (e *Err) Error() string {
	return fmt.Sprintf("fault: injected %s failure on %s", e.Op, e.Path)
}

// Unwrap lets errors.Is(err, ErrInjected) see through wrapping.
func (e *Err) Unwrap() error { return ErrInjected }

// IsTransient reports whether the fault models a retryable condition.
func (e *Err) IsTransient() bool { return e.Transient }

// Injector decides, before each operation, whether it fails. Implementations
// must be safe for concurrent use; Apply may sleep to model latency.
type Injector interface {
	Apply(op Op, path string) error
}

// FS performs file operations, routing each through the Injector first.
// All methods are safe on a nil receiver (pure passthrough).
type FS struct {
	inj Injector
}

// New returns an FS that consults inj before every operation.
func New(inj Injector) *FS { return &FS{inj: inj} }

func (fs *FS) apply(op Op, path string) error {
	if fs == nil || fs.inj == nil {
		return nil
	}
	err := fs.inj.Apply(op, path)
	if err != nil {
		obs.Default().Counter("fault_injected_total", obs.L("op", string(op))).Inc()
	}
	return err
}

// OpenFile opens name like os.OpenFile, returning an injectable *File.
func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (*File, error) {
	if err := fs.apply(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{File: f, fs: fs}, nil
}

// CreateTemp creates a temp file like os.CreateTemp.
func (fs *FS) CreateTemp(dir, pattern string) (*File, error) {
	if err := fs.apply(OpCreate, dir); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &File{File: f, fs: fs}, nil
}

// MkdirAll creates a directory tree like os.MkdirAll.
func (fs *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := fs.apply(OpMkdir, path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

// Rename renames like os.Rename. The injected path is the destination.
func (fs *FS) Rename(oldpath, newpath string) error {
	if err := fs.apply(OpRename, newpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// Remove removes like os.Remove.
func (fs *FS) Remove(name string) error {
	if err := fs.apply(OpRemove, name); err != nil {
		return err
	}
	return os.Remove(name)
}

// SyncDir fsyncs a directory, making a prior rename in it durable. A crash
// between rename and directory fsync can resurrect the old name on some
// filesystems, which is exactly the window the injector lets tests open.
func (fs *FS) SyncDir(dir string) error {
	if err := fs.apply(OpSyncDir, dir); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// File wraps *os.File, routing Write/Sync/Close/Truncate through the
// injector. Reads and seeks pass straight through: replay/recovery paths
// must see the bytes exactly as the "disk" holds them.
type File struct {
	*os.File
	fs *FS
}

// Write injects before writing. A fault with Torn > 0 first writes that
// prefix of p, modelling a write torn by power loss.
func (f *File) Write(p []byte) (int, error) {
	if err := f.fs.apply(OpWrite, f.Name()); err != nil {
		var fe *Err
		if errors.As(err, &fe) && fe.Torn > 0 && fe.Torn < len(p) {
			n, _ := f.File.Write(p[:fe.Torn])
			return n, err
		}
		return 0, err
	}
	return f.File.Write(p)
}

// Sync injects before fsync.
func (f *File) Sync() error {
	if err := f.fs.apply(OpSync, f.Name()); err != nil {
		return err
	}
	return f.File.Sync()
}

// Close injects before close; on an injected failure the descriptor is
// still released so sweeps don't leak fds.
func (f *File) Close() error {
	if err := f.fs.apply(OpClose, f.Name()); err != nil {
		f.File.Close()
		return err
	}
	return f.File.Close()
}

// Truncate injects before truncating.
func (f *File) Truncate(size int64) error {
	if err := f.fs.apply(OpTruncate, f.Name()); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

// Script is a deterministic Injector: it counts operations that pass Match
// and fails the FailAt-th (1-based). With Sticky set every later matching
// operation fails too — a disk that breaks and stays broken, rather than a
// single glitch.
type Script struct {
	// FailAt is the 1-based index of the matching operation to fail;
	// zero or negative never fails.
	FailAt int
	// Match restricts which operations count; nil matches all.
	Match func(op Op, path string) bool
	// Torn is carried into the injected Err for write faults.
	Torn int
	// Transient marks injected faults retryable.
	Transient bool
	// Sticky keeps failing after the first injected fault.
	Sticky bool
	// Delay is slept before every matching operation (latency injection).
	Delay time.Duration

	mu    sync.Mutex
	seen  int
	fired bool
}

// Apply implements Injector.
func (s *Script) Apply(op Op, path string) error {
	if s.Match != nil && !s.Match(op, path) {
		return nil
	}
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if s.fired && s.Sticky {
		return &Err{Op: op, Path: path, Transient: s.Transient}
	}
	if s.FailAt > 0 && s.seen == s.FailAt {
		s.fired = true
		return &Err{Op: op, Path: path, Torn: s.Torn, Transient: s.Transient}
	}
	return nil
}

// Seen returns how many matching operations have been observed.
func (s *Script) Seen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// OpRecord is one observed operation.
type OpRecord struct {
	Op   Op
	Path string
}

// Recorder is an Injector that never fails but records every operation —
// the instrument sweeps use to enumerate a workload's fault points.
type Recorder struct {
	mu  sync.Mutex
	ops []OpRecord
}

// Apply implements Injector.
func (r *Recorder) Apply(op Op, path string) error {
	r.mu.Lock()
	r.ops = append(r.ops, OpRecord{Op: op, Path: path})
	r.mu.Unlock()
	return nil
}

// Ops returns a copy of the recorded operations in order.
func (r *Recorder) Ops() []OpRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]OpRecord(nil), r.ops...)
}

// MatchOps returns a Match function selecting only the given op classes.
func MatchOps(ops ...Op) func(Op, string) bool {
	set := map[Op]bool{}
	for _, o := range ops {
		set[o] = true
	}
	return func(op Op, _ string) bool { return set[op] }
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"modellake/internal/fault"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
)

// armedInjector gates an inner injector behind a switch, so a sweep can run
// a clean prelude (ingest + replicate), then arm the faults for the phase
// under test. Unarmed operations are invisible — not counted, not failed —
// which keeps the recorder pass and the scripted passes aligned.
type armedInjector struct {
	inner fault.Injector
	on    atomic.Bool
}

func (a *armedInjector) Apply(op fault.Op, path string) error {
	if !a.on.Load() {
		return nil
	}
	return a.inner.Apply(op, path)
}

// chaosPopulation is the smallest population that still exercises blob
// writes, multi-key registry commits, provenance journaling, and WAL
// shipping: two base models and two fine-tuned children.
func chaosPopulation(t *testing.T) *lakegen.Population {
	t.Helper()
	spec := lakegen.DefaultSpec(42)
	spec.NumBases = 2
	spec.ChildrenPerBase = 1
	spec.MaxDepth = 1
	spec.TrainN = 40
	spec.BaseEpochs = 2
	spec.FTEpochs = 1
	pop, err := lakegen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// chaosRun is one pass of the shard-kill workload against a fresh cluster:
//
//	prelude: ingest the first preludeN members cleanly and wait for the
//	         replicas to fully catch up, so failover has something to serve;
//	arm:     switch on the injected faults for the target shard's leader;
//	chaos:   ingest the remaining members, recording which writes acked.
type chaosRun struct {
	c         *Cluster
	target    int
	prelude   []string // acked + replicated before the faults arm
	acked     []string // every acked write, prelude included
	sawFail   bool
	failedErr error // first non-nil ingest error
}

const preludeN = 2

func runChaosWorkload(t *testing.T, dir string, pop *lakegen.Population, target int, arm *armedInjector) *chaosRun {
	t.Helper()
	leaderFS := make([]*fault.FS, 2)
	leaderFS[target] = fault.New(arm)
	c, err := Open(Config{
		Dir:      dir,
		Shards:   2,
		Replicas: 1,
		Lake:     lake.Config{Sync: true, Seed: 1},
		LeaderFS: leaderFS,
	})
	if err != nil {
		t.Fatalf("open cluster: %v", err)
	}
	run := &chaosRun{c: c, target: target}
	for _, ds := range pop.Datasets {
		if err := c.RegisterDataset(ds); err != nil {
			t.Fatalf("register dataset: %v", err)
		}
	}
	for i := 0; i < preludeN; i++ {
		m := pop.Members[i]
		rec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err != nil {
			t.Fatalf("prelude ingest: %v", err)
		}
		run.prelude = append(run.prelude, rec.ID)
		run.acked = append(run.acked, rec.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatalf("prelude flush: %v", err)
	}

	arm.on.Store(true)
	for i := preludeN; i < len(pop.Members); i++ {
		m := pop.Members[i]
		rec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err == nil {
			run.acked = append(run.acked, rec.ID)
			continue
		}
		run.sawFail = true
		if run.failedErr == nil {
			run.failedErr = err
		}
	}
	arm.on.Store(false)
	return run
}

// TestShardKillChaosSweep is the acceptance gate for the cluster's
// robustness story. It enumerates every leader IO operation the chaos phase
// performs, then replays the workload once per operation with that
// operation (and, sticky, every later one — a disk that dies and stays
// dead) failing, and asserts after each kill:
//
//  1. no acked write is ever lost: every acknowledged ingest is readable
//     after the leader restarts from its on-disk state;
//  2. reads keep completing during the outage by failing over to the
//     replica, and they serve exactly the replicated state;
//  3. writes to the dead shard fail fast with ErrLeaderDown while the
//     sibling shard keeps acking, and the health gauges track the outage
//     and the recovery.
func TestShardKillChaosSweep(t *testing.T) {
	pop := chaosPopulation(t)

	// The first chaos-phase write lands on the shard owning the first
	// post-prelude minted ID — that shard is the kill target.
	ring := NewRing(2, 0)
	target := ring.Owner(fmt.Sprintf("m-%06d", preludeN+1))

	// Recorder pass: count the target leader's IO operations during the
	// chaos phase.
	rec := &fault.Recorder{}
	probe := runChaosWorkload(t, t.TempDir(), pop, target, &armedInjector{inner: rec})
	probe.c.Close()
	if probe.sawFail {
		t.Fatalf("recorder pass must not fail: %v", probe.failedErr)
	}
	n := len(rec.Ops())
	if n < 10 {
		t.Fatalf("chaos phase exercised only %d leader IO ops; sweep too small", n)
	}

	stride := 1
	if testing.Short() {
		stride = (n + 7) / 8 // 8 kill points in short mode
	}
	for i := 1; i <= n; i += stride {
		i := i
		t.Run(fmt.Sprintf("op-%02d", i), func(t *testing.T) {
			script := &fault.Script{FailAt: i, Sticky: true}
			run := runChaosWorkload(t, t.TempDir(), pop, target, &armedInjector{inner: script})
			c := run.c
			defer c.Close()

			if run.sawFail {
				if !errors.Is(run.failedErr, ErrLeaderDown) {
					t.Fatalf("chaos-phase write failed with %v, want ErrLeaderDown", run.failedErr)
				}
				if g := leaderUpGauge(target); g != 0 {
					t.Fatalf("cluster_shard_leader_up{shard=%d} = %d during outage, want 0", target, g)
				}
				// In-flight reads complete via failover, serving the
				// replicated state exactly.
				if err := c.Ready(); err != nil {
					t.Fatalf("cluster lost read availability during a single-leader outage: %v", err)
				}
				for _, id := range run.prelude {
					r, err := c.Record(id)
					if err != nil {
						t.Fatalf("failover read of replicated model %s: %v", id, err)
					}
					if r.ID != id {
						t.Fatalf("failover read returned %s for %s", r.ID, id)
					}
				}
				if _, err := c.SearchKeywordContext(context.Background(), "legal statute court", 3); err != nil {
					t.Fatalf("keyword search during outage: %v", err)
				}
				// The sibling shard must still ack writes.
				extra := pop.Members[0]
				recNew, err := c.Ingest(extra.Model, extra.Card,
					registry.RegisterOptions{ID: siblingID(ring, target), Name: extra.Truth.Name + "-sibling", Version: "1"})
				if err != nil {
					t.Fatalf("sibling-shard write during outage: %v", err)
				}
				run.acked = append(run.acked, recNew.ID)
			}

			// Kill the (possibly already poisoned) leader process outright,
			// then bring it back on a healthy disk. Every acked write must
			// have survived.
			c.KillShardLeader(target)
			if err := c.RestartShardLeader(target); err != nil {
				t.Fatalf("leader restart after kill at op %d: %v", i, err)
			}
			if g := leaderUpGauge(target); g != 1 {
				t.Fatalf("cluster_shard_leader_up{shard=%d} = %d after restart, want 1", target, g)
			}
			for _, id := range run.acked {
				if _, err := c.Record(id); err != nil {
					t.Fatalf("acked write %s lost after kill at op %d: %v", id, i, err)
				}
			}
			if got := c.Count(); got < len(run.acked) {
				t.Fatalf("recovered %d models, acked %d", got, len(run.acked))
			}
			// Replication resumes from the replica's own offset and
			// re-converges.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := c.FlushReplication(ctx); err != nil {
				t.Fatalf("replication did not reconverge after restart: %v", err)
			}
			// The healed shard takes writes again.
			extra := pop.Members[0]
			if _, err := c.Ingest(extra.Model, extra.Card,
				registry.RegisterOptions{ID: ownedID(ring, target), Name: extra.Truth.Name + "-healed", Version: "1"}); err != nil {
				t.Fatalf("write to healed shard: %v", err)
			}
		})
	}
}

// siblingID returns an unused explicit ID owned by a shard other than
// target; ownedID returns one owned by target. Explicit IDs let the test
// aim a write at a specific shard.
func siblingID(ring *Ring, target int) string {
	for i := 1000; ; i++ {
		id := fmt.Sprintf("m-9%05d", i)
		if ring.Owner(id) != target {
			return id
		}
	}
}

func ownedID(ring *Ring, target int) string {
	for i := 5000; ; i++ {
		id := fmt.Sprintf("m-8%05d", i)
		if ring.Owner(id) == target {
			return id
		}
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"modellake/internal/audit"
	"modellake/internal/benchmark"
	"modellake/internal/card"
	"modellake/internal/data"
	"modellake/internal/docgen"
	"modellake/internal/fault"
	"modellake/internal/lake"
	"modellake/internal/mlql"
	"modellake/internal/model"
	"modellake/internal/provenance"
	"modellake/internal/registry"
	"modellake/internal/retry"
	"modellake/internal/search"
	"modellake/internal/tensor"
	"modellake/internal/version"
)

// Config configures a cluster.
type Config struct {
	// Dir is the cluster root; each shard lives in Dir/shardN.
	Dir string
	// Shards is the partition count (default 2). It is fixed for the life
	// of the cluster directory: placement is a pure function of the ID and
	// the shard count.
	Shards int
	// Replicas is the read-replica count per shard (default 1).
	Replicas int
	// Vnodes is the consistent-hash virtual-node count per shard
	// (default DefaultVnodes).
	Vnodes int
	// Lake is the per-node lake template. Dir, BlobDir, FS, and Follower
	// are overridden per node; everything else (Seed, dimensions, Sync,
	// caches) applies to every node. Seed in particular must be uniform:
	// embedders across the cluster have to agree bit-for-bit.
	Lake lake.Config
	// LeaderFS optionally routes shard i's leader IO through LeaderFS[i]
	// for fault injection; nil entries (or a nil/short slice) mean the
	// real filesystem. Replicas always use the real filesystem.
	LeaderFS []*fault.FS
	// Retry is the failover policy for routed reads; the zero value uses
	// the retry package defaults (3 attempts, 2ms base, jittered).
	Retry retry.Policy
}

// Cluster is a sharded, replicated lake behind the single-lake API: writes
// route to the owning shard's leader, reads fail over to replicas, searches
// scatter to every shard and gather through the same merge machinery the
// single-node path uses.
type Cluster struct {
	cfg    Config
	ring   *Ring
	shards []*shard
	pol    retry.Policy

	// nextID mints catalog IDs centrally (placement hashes the ID, so the
	// ID must exist before the owning shard is known). Seeded from the
	// highest persisted ID so reopened clusters keep counting.
	nextID atomic.Uint64

	// benchmarks remembers the registered suite; benchmark registration is
	// in-memory on each node, so a restarted leader needs it replayed.
	bmu        sync.Mutex
	benchmarks map[string]*benchmark.Benchmark
}

// Open opens (or creates) a cluster under cfg.Dir.
func Open(cfg Config) (*Cluster, error) {
	if cfg.Dir == "" {
		return nil, errors.New("cluster: Dir is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Replicas < 0 {
		cfg.Replicas = 0
	} else if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: create directory: %w", err)
	}
	c := &Cluster{
		cfg:        cfg,
		ring:       NewRing(cfg.Shards, cfg.Vnodes),
		pol:        cfg.Retry,
		benchmarks: map[string]*benchmark.Benchmark{},
	}
	for i := 0; i < cfg.Shards; i++ {
		var fs *fault.FS
		if i < len(cfg.LeaderFS) {
			fs = cfg.LeaderFS[i]
		}
		s, err := openShard(i, filepath.Join(cfg.Dir, fmt.Sprintf("shard%d", i)), cfg.Lake, cfg.Replicas, fs)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.shards = append(c.shards, s)
	}
	if err := c.seedIDCounter(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// seedIDCounter scans every shard for the highest minted "m-%06d" ID so a
// reopened cluster continues the sequence instead of colliding.
func (c *Cluster) seedIDCounter() error {
	var max uint64
	for _, s := range c.shards {
		recs, err := readFrom(context.Background(), s, c.pol, (*lake.Lake).Records)
		if err != nil {
			return fmt.Errorf("cluster: seed ID counter: %w", err)
		}
		for _, rec := range recs {
			var n uint64
			if _, err := fmt.Sscanf(rec.ID, "m-%06d", &n); err == nil && n > max {
				max = n
			}
		}
	}
	c.nextID.Store(max)
	return nil
}

// MintID allocates the next catalog ID. IDs match the single-node format
// and sequence ("m-000001", ...), so a cluster and a single lake ingesting
// the same stream in the same order assign identical IDs.
func (c *Cluster) MintID() string {
	return fmt.Sprintf("m-%06d", c.nextID.Add(1))
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// OwnerOf returns the shard index owning a catalog ID.
func (c *Cluster) OwnerOf(id string) int { return c.ring.Owner(id) }

func (c *Cluster) owner(id string) *shard { return c.shards[c.ring.Owner(id)] }

// Close releases every node in every shard.
func (c *Cluster) Close() error {
	for _, s := range c.shards {
		if s != nil {
			s.close()
		}
	}
	return nil
}

// Ready reports whether every shard can serve reads (at least one live
// node). A shard with its leader down but a live replica is still ready —
// degraded for writes, available for reads.
func (c *Cluster) Ready() error {
	for _, s := range c.shards {
		if lk, _, _ := s.readNode(); lk == nil {
			return fmt.Errorf("cluster: shard %d has no live node", s.idx)
		}
	}
	return nil
}

// --- Write path -------------------------------------------------------

// Ingest is IngestContext with a background context.
func (c *Cluster) Ingest(m *model.Model, crd *card.Card, opts registry.RegisterOptions) (*registry.Record, error) {
	return c.IngestContext(context.Background(), m, crd, opts)
}

// IngestContext stores one model on its owning shard. An empty opts.ID mints
// the next cluster ID; placement hashes the final ID either way. A context
// that dies before the write is submitted aborts it with ctx.Err(); a write
// already handed to the leader's group commit runs to completion (the lake's
// commit is not interruptible mid-batch).
func (c *Cluster) IngestContext(ctx context.Context, m *model.Model, crd *card.Card, opts registry.RegisterOptions) (*registry.Record, error) {
	if opts.ID == "" {
		opts.ID = c.MintID()
	}
	return writeTo(ctx, c.owner(opts.ID), func(l *lake.Lake) (*registry.Record, error) {
		return l.IngestContext(ctx, m, crd, opts)
	})
}

// IngestAll is IngestAllContext with a background context.
func (c *Cluster) IngestAll(items []lake.IngestItem, parallelism int) ([]*registry.Record, []error) {
	return c.IngestAllContext(context.Background(), items, parallelism)
}

// IngestAllContext batch-ingests items, grouping them by owning shard and
// running the shard batches concurrently. Results and errors align with
// items. Cancellation is checked at the shard boundary: batches not yet
// submitted fail with ctx.Err(), already-running batches complete.
func (c *Cluster) IngestAllContext(ctx context.Context, items []lake.IngestItem, parallelism int) ([]*registry.Record, []error) {
	recs := make([]*registry.Record, len(items))
	errs := make([]error, len(items))
	groups := make([][]int, len(c.shards))
	for i := range items {
		if items[i].Opts.ID == "" {
			items[i].Opts.ID = c.MintID()
		}
		o := c.ring.Owner(items[i].Opts.ID)
		groups[o] = append(groups[o], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s *shard, idxs []int) {
			defer wg.Done()
			batch := make([]lake.IngestItem, len(idxs))
			for j, i := range idxs {
				batch[j] = items[i]
			}
			type batchResult struct {
				recs []*registry.Record
				errs []error
			}
			var used *lake.Lake
			res, err := writeTo(ctx, s, func(l *lake.Lake) (batchResult, error) {
				used = l
				r, e := l.IngestAllContext(ctx, batch, parallelism)
				return batchResult{r, e}, nil
			})
			for j, i := range idxs {
				if err != nil {
					errs[i] = err
					continue
				}
				recs[i] = res.recs[j]
				errs[i] = res.errs[j]
				// writeTo saw a nil error (per-item errors don't surface
				// there), so node failures inside the batch down the exact
				// leader that served it here — identity-checked, in case a
				// promotion already replaced it.
				if errs[i] != nil && isNodeFailure(errs[i]) {
					s.markLeaderDown(used)
				}
			}
		}(c.shards[si], idxs)
	}
	wg.Wait()
	return recs, errs
}

// RegisterDataset persists the dataset on every shard leader, so each
// shard's lineage reasoning (and replicas, via shipping) sees the full
// dataset version graph.
func (c *Cluster) RegisterDataset(ds *data.Dataset) error {
	for _, s := range c.shards {
		if _, err := writeTo(context.Background(), s, func(l *lake.Lake) (struct{}, error) {
			return struct{}{}, l.RegisterDataset(ds)
		}); err != nil {
			return err
		}
	}
	return nil
}

// RegisterBenchmark registers the benchmark on every node. Benchmarks are
// in-memory, so replicas need them directly (they never take writes) and
// restarted leaders get them replayed.
func (c *Cluster) RegisterBenchmark(b *benchmark.Benchmark) {
	c.bmu.Lock()
	c.benchmarks[b.ID] = b
	c.bmu.Unlock()
	for _, s := range c.shards {
		s.mu.RLock()
		nodes := make([]*lake.Lake, 0, 1+len(s.replicas))
		if s.leader != nil {
			nodes = append(nodes, s.leader)
		}
		for _, r := range s.replicas {
			if r.lk != nil { // vacant slots hold no node to register on
				nodes = append(nodes, r.lk)
			}
		}
		s.mu.RUnlock()
		for _, lk := range nodes {
			lk.RegisterBenchmark(b)
		}
	}
}

func (c *Cluster) benchmarkList() []*benchmark.Benchmark {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	out := make([]*benchmark.Benchmark, 0, len(c.benchmarks))
	for _, b := range c.benchmarks {
		out = append(out, b)
	}
	return out
}

// --- Routed reads -----------------------------------------------------

// Record returns the catalog record for id from its owning shard.
func (c *Cluster) Record(id string) (*registry.Record, error) {
	return readFrom(context.Background(), c.owner(id), c.pol, func(l *lake.Lake) (*registry.Record, error) {
		return l.Record(id)
	})
}

// Card returns the model card for id from its owning shard.
func (c *Cluster) Card(id string) (*card.Card, error) {
	return readFrom(context.Background(), c.owner(id), c.pol, func(l *lake.Lake) (*card.Card, error) {
		return l.Card(id)
	})
}

// Resolve maps name[@version] to an ID. Name registrations live on the
// owning shard of the ID they point at, so resolution asks each shard in
// turn.
func (c *Cluster) Resolve(name, ver string) (string, error) {
	for _, s := range c.shards {
		id, err := readFrom(context.Background(), s, c.pol, func(l *lake.Lake) (string, error) {
			return l.Resolve(name, ver)
		})
		if err == nil {
			return id, nil
		}
		if !errors.Is(err, registry.ErrNotFound) {
			return "", err
		}
	}
	return "", fmt.Errorf("%w: %s@%s", registry.ErrNotFound, name, ver)
}

// Count returns the total model count across shards.
func (c *Cluster) Count() int {
	total := 0
	for _, s := range c.shards {
		n, err := readFrom(context.Background(), s, c.pol, func(l *lake.Lake) (int, error) {
			return l.Count(), nil
		})
		if err == nil {
			total += n
		}
	}
	return total
}

// Records returns every catalog record across shards, sorted by ID — the
// same order a single-node registry scan yields.
func (c *Cluster) Records() ([]*registry.Record, error) {
	var out []*registry.Record
	for _, s := range c.shards {
		recs, err := readFrom(context.Background(), s, c.pol, (*lake.Lake).Records)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Score returns model modelID's score on benchID, computed on its owning
// shard (replicas recompute rather than cache — scores are deterministic).
func (c *Cluster) Score(modelID, benchID string) (float64, error) {
	return readFrom(context.Background(), c.owner(modelID), c.pol, func(l *lake.Lake) (float64, error) {
		return l.Score(modelID, benchID)
	})
}

// Cite builds a citation for the model from its owning shard. The embedded
// version graph is the owning shard's reconstruction.
func (c *Cluster) Cite(id string) (provenance.Citation, error) {
	return readFrom(context.Background(), c.owner(id), c.pol, func(l *lake.Lake) (provenance.Citation, error) {
		return l.Cite(id)
	})
}

// ProvenanceWhy explains an entity from the shard that recorded it. Model
// entities route by ID; anything else is asked of each shard in turn.
func (c *Cluster) ProvenanceWhy(entity string) (*provenance.Explanation, error) {
	if id, ok := strings.CutPrefix(entity, "model:"); ok {
		return readFrom(context.Background(), c.owner(id), c.pol, func(l *lake.Lake) (*provenance.Explanation, error) {
			return l.ProvenanceWhy(entity)
		})
	}
	var lastErr error
	for _, s := range c.shards {
		ex, err := readFrom(context.Background(), s, c.pol, func(l *lake.Lake) (*provenance.Explanation, error) {
			return l.ProvenanceWhy(entity)
		})
		if err == nil {
			return ex, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// GenerateCardContext drafts documentation for the model on its owning
// shard. Peer statistics come from that shard's population.
func (c *Cluster) GenerateCardContext(ctx context.Context, id string) (*docgen.Draft, error) {
	return readFrom(ctx, c.owner(id), c.pol, func(l *lake.Lake) (*docgen.Draft, error) {
		return l.GenerateCardContext(ctx, id)
	})
}

// AuditContext audits the model on its owning shard. Comparison cohorts
// come from that shard's population.
func (c *Cluster) AuditContext(ctx context.Context, id string, flagged map[string]string) (*audit.Report, error) {
	return readFrom(ctx, c.owner(id), c.pol, func(l *lake.Lake) (*audit.Report, error) {
		return l.AuditContext(ctx, id, flagged)
	})
}

// --- Scatter-gather search --------------------------------------------

// SearchKeyword is SearchKeywordContext with a background context.
func (c *Cluster) SearchKeyword(query string, k int) []search.Hit {
	hits, _ := c.SearchKeywordContext(context.Background(), query, k)
	return hits
}

// SearchKeywordContext runs an exact cluster-wide BM25 search in two
// phases: gather every shard's corpus statistics for the query terms,
// merge them into global statistics, then have every shard rank its own
// documents under those global statistics and merge the per-shard top-k.
// Per-document scores are computed with the identical float operations in
// the identical order as a single index holding the union, and every
// document lives on exactly one shard, so the merged ranking is
// bitwise-identical to the single-node ranking.
func (c *Cluster) SearchKeywordContext(ctx context.Context, query string, k int) ([]search.Hit, error) {
	tokens := data.Tokenize(query)
	var global search.KeywordStats
	for _, s := range c.shards {
		st, err := readFrom(ctx, s, c.pol, func(l *lake.Lake) (search.KeywordStats, error) {
			return l.KeywordStatsFor(tokens), nil
		})
		if err != nil {
			return nil, err
		}
		global.Merge(st)
	}
	var all []search.Hit
	for _, s := range c.shards {
		hits, err := readFrom(ctx, s, c.pol, func(l *lake.Lake) ([]search.Hit, error) {
			return l.SearchKeywordWithStats(query, global, k)
		})
		if err != nil {
			return nil, err
		}
		all = append(all, hits...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// SearchByModel is SearchByModelContext with a background context.
func (c *Cluster) SearchByModel(id, space string, k int) ([]search.Hit, error) {
	return c.SearchByModelContext(context.Background(), id, space, k)
}

// SearchByModelContext runs a model-as-query vector search across the
// cluster: the owning shard embeds the query model, every shard returns
// its local top-(k+1) for the query vector, and the per-shard lists merge
// through the same bounded-heap selector the single-node index uses before
// the query model itself is excluded. Shards partition the population, so
// with the exact flat index the merged result is bitwise-identical —
// same IDs, same order, same distance bits, same tie-breaks — to a single
// lake holding the union.
func (c *Cluster) SearchByModelContext(ctx context.Context, id, space string, k int) ([]search.Hit, error) {
	v, err := readFrom(ctx, c.owner(id), c.pol, func(l *lake.Lake) (tensor.Vector, error) {
		return l.EmbedModelQuery(id, space)
	})
	if err != nil {
		return nil, err
	}
	lists := make([][]search.Hit, len(c.shards))
	for i, s := range c.shards {
		lists[i], err = readFrom(ctx, s, c.pol, func(l *lake.Lake) ([]search.Hit, error) {
			return l.SearchByVectorSpace(ctx, space, v, k+1)
		})
		if err != nil {
			return nil, err
		}
	}
	merged := search.MergeTopK(k+1, lists...)
	return search.ExcludeSelf(merged, id, k), nil
}

// SearchByModelMany runs SearchByModelContext for each ID with bounded
// parallelism, mirroring the single-node batch search.
func (c *Cluster) SearchByModelMany(ctx context.Context, ids []string, space string, k, parallelism int) ([][]search.Hit, []error) {
	hits := make([][]search.Hit, len(ids))
	errs := make([]error, len(ids))
	if parallelism <= 0 {
		parallelism = 4
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			hits[i], errs[i] = c.SearchByModelContext(ctx, id, space, k)
		}(i, id)
	}
	wg.Wait()
	return hits, errs
}

// --- MLQL and graphs --------------------------------------------------

// Query parses and executes an MLQL query against the cluster.
func (c *Cluster) Query(q string) (*mlql.Result, error) {
	return c.QueryContext(context.Background(), q)
}

// QueryContext runs MLQL against the cluster catalog: candidate rows and
// rankings are gathered per shard and merged with the same comparators the
// single-node catalog uses.
func (c *Cluster) QueryContext(ctx context.Context, q string) (*mlql.Result, error) {
	return mlql.RunContext(ctx, q, &clusterCatalog{c: c, ctx: ctx})
}

// Catalog exposes the cluster's MLQL catalog adapter.
func (c *Cluster) Catalog() mlql.Catalog { return &clusterCatalog{c: c, ctx: context.Background()} }

// VersionGraph is VersionGraphContext with a background context.
func (c *Cluster) VersionGraph() (*version.Graph, error) {
	return c.VersionGraphContext(context.Background())
}

// VersionGraphContext merges the per-shard Model Graph reconstructions:
// nodes are the union, edges the concatenation (each shard only proposes
// edges among its own models, so edge sets are disjoint). Cross-shard
// parent/child pairs are not recovered — content-based edge inference
// needs both endpoints' weights on one node — which is the documented
// fidelity cost of sharding this reconstruction.
func (c *Cluster) VersionGraphContext(ctx context.Context) (*version.Graph, error) {
	g := &version.Graph{}
	for _, s := range c.shards {
		sg, err := readFrom(ctx, s, c.pol, func(l *lake.Lake) (*version.Graph, error) {
			return l.VersionGraphContext(ctx)
		})
		if err != nil {
			return nil, err
		}
		g.Nodes = append(g.Nodes, sg.Nodes...)
		g.Edges = append(g.Edges, sg.Edges...)
	}
	sort.Strings(g.Nodes)
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].Parent != g.Edges[j].Parent {
			return g.Edges[i].Parent < g.Edges[j].Parent
		}
		return g.Edges[i].Child < g.Edges[j].Child
	})
	return g, nil
}

// --- Operations -------------------------------------------------------

// ReplicaStatus is one replica slot's health in a Status report. Name is
// the node currently occupying the slot ("" = vacant, e.g. after its
// occupant was promoted to leader).
type ReplicaStatus struct {
	Name     string `json:"name"`
	Up       bool   `json:"up"`
	LagBytes int64  `json:"lag_bytes"`
}

// ShardStatus is one shard's health in a Status report. Leader names the
// node currently holding leadership (initially "leader"; a promoted replica
// keeps its node name, e.g. "replica0"), and Epoch is the leadership epoch —
// it increments on every promotion, so a changed Leader always comes with a
// changed Epoch.
type ShardStatus struct {
	Shard    int             `json:"shard"`
	Leader   string          `json:"leader"`
	Epoch    uint64          `json:"epoch"`
	LeaderUp bool            `json:"leader_up"`
	Models   int             `json:"models"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// Status reports per-shard leadership (current leader node and epoch),
// model counts, and replica lag — the payload behind the server's
// /v1/cluster/status endpoint.
func (c *Cluster) Status() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	for i, s := range c.shards {
		st := ShardStatus{Shard: s.idx, LeaderUp: s.leaderUp.Load()}
		var target int64
		s.mu.RLock()
		ldr := s.leader
		st.Leader = s.leaderName
		st.Epoch = s.epoch
		s.mu.RUnlock()
		if ldr != nil && st.LeaderUp {
			target = ldr.WALOffset()
		}
		if n, err := readFrom(context.Background(), s, c.pol, func(l *lake.Lake) (int, error) {
			return l.Count(), nil
		}); err == nil {
			st.Models = n
		}
		s.mu.RLock()
		for _, r := range s.replicas {
			rs := ReplicaStatus{Name: r.name, Up: r.up.Load()}
			if r.lk != nil && target > 0 {
				if rs.LagBytes = target - r.lk.WALOffset(); rs.LagBytes < 0 {
					rs.LagBytes = 0
				}
			}
			st.Replicas = append(st.Replicas, rs)
		}
		s.mu.RUnlock()
		out[i] = st
	}
	return out
}

// ShardEpoch returns shard i's current leadership epoch.
func (c *Cluster) ShardEpoch(i int) uint64 {
	s := c.shards[i]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// KillShardLeader simulates shard i's current leader process dying. With a
// live replica whose catch-up can be certified against the dead leader's
// log, the shard automatically promotes it and keeps taking writes.
func (c *Cluster) KillShardLeader(i int) { c.shards[i].KillLeader() }

// RestartShardLeader returns shard i's dead node(s) to service from their
// on-disk state on a healthy filesystem and re-registers the benchmark
// suite. A node deposed by a promotion rejoins as a replica (its
// unreplicated tail truncated at the promotion point); a node that is still
// the rightful leader reopens as leader.
func (c *Cluster) RestartShardLeader(i int) error {
	return c.shards[i].RestartLeader(nil, c.benchmarkList())
}

// FlushReplication blocks until every live replica of every shard has
// fully applied its leader's committed log.
func (c *Cluster) FlushReplication(ctx context.Context) error {
	for _, s := range c.shards {
		if err := s.FlushReplication(ctx); err != nil {
			return err
		}
	}
	return nil
}

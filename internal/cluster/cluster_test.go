package cluster

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"modellake/internal/benchmark"
	"modellake/internal/fault"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/obs"
	"modellake/internal/registry"
)

// testPopulation generates a small synthetic lake population.
func testPopulation(t *testing.T, seed uint64, bases, children int) *lakegen.Population {
	t.Helper()
	s := lakegen.DefaultSpec(seed)
	s.NumBases = bases
	s.ChildrenPerBase = children
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// fillCluster serially ingests a population into the cluster (serial so
// minted IDs match a single-node lake ingesting the same stream), returning
// member-index → ID. Datasets and benchmarks are registered like the
// single-node fill helper.
func fillCluster(t *testing.T, c *Cluster, pop *lakegen.Population) []string {
	t.Helper()
	for _, ds := range pop.Datasets {
		if err := c.RegisterDataset(ds); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]string, len(pop.Members))
	for i, m := range pop.Members {
		rec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = rec.ID
	}
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			c.RegisterBenchmark(&benchmark.Benchmark{
				ID:     "bench-" + m.Truth.Domain,
				DS:     pop.Datasets[m.Truth.DatasetID],
				Metric: benchmark.MetricAccuracy,
			})
		}
	}
	return ids
}

// fillLake is fillCluster for a single-node lake.
func fillLake(t *testing.T, l *lake.Lake, pop *lakegen.Population) []string {
	t.Helper()
	for _, ds := range pop.Datasets {
		if err := l.RegisterDataset(ds); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]string, len(pop.Members))
	for i, m := range pop.Members {
		rec, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = rec.ID
	}
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			l.RegisterBenchmark(&benchmark.Benchmark{
				ID:     "bench-" + m.Truth.Domain,
				DS:     pop.Datasets[m.Truth.DatasetID],
				Metric: benchmark.MetricAccuracy,
			})
		}
	}
	return ids
}

func leaderUpGauge(shard int) int64 {
	return obs.Default().Gauge("cluster_shard_leader_up", obs.L("shard", strconv.Itoa(shard))).Value()
}

func TestRingPlacementIsDeterministicAndCovering(t *testing.T) {
	r1 := NewRing(3, 0)
	r2 := NewRing(3, 0)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		key := "m-" + strconv.Itoa(i)
		o := r1.Owner(key)
		if o != r2.Owner(key) {
			t.Fatalf("placement of %s differs between identical rings", key)
		}
		if o < 0 || o >= 3 {
			t.Fatalf("owner %d out of range", o)
		}
		counts[o]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no keys", s)
		}
		// 3000 keys over 3 shards: expect ~1000 each; consistent hashing
		// with 64 vnodes should stay well within 2x of fair share.
		if n < 300 || n > 2000 {
			t.Fatalf("shard %d holds %d of 3000 keys; ring badly imbalanced: %v", s, n, counts)
		}
	}
}

func TestClusterRoutesWritesAndReads(t *testing.T) {
	c, err := Open(Config{Dir: t.TempDir(), Shards: 2, Lake: lake.Config{Sync: true, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pop := testPopulation(t, 21, 2, 2)
	ids := fillCluster(t, c, pop)

	if c.Count() != len(pop.Members) {
		t.Fatalf("Count = %d, want %d", c.Count(), len(pop.Members))
	}
	recs, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ids) {
		t.Fatalf("Records = %d entries, want %d", len(recs), len(ids))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].ID >= recs[i].ID {
			t.Fatalf("Records not sorted by ID: %s before %s", recs[i-1].ID, recs[i].ID)
		}
	}
	seen := make(map[int]bool)
	for i, id := range ids {
		seen[c.OwnerOf(id)] = true
		rec, err := c.Record(id)
		if err != nil {
			t.Fatalf("Record(%s): %v", id, err)
		}
		if rec.Name != pop.Members[i].Truth.Name {
			t.Fatalf("record %s has name %q, want %q", id, rec.Name, pop.Members[i].Truth.Name)
		}
		rid, err := c.Resolve(pop.Members[i].Truth.Name, "1")
		if err != nil || rid != id {
			t.Fatalf("Resolve(%s) = %s, %v; want %s", pop.Members[i].Truth.Name, rid, err, id)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("all %d models landed on one shard; placement not spreading", len(ids))
	}

	hits, err := c.SearchByModel(ids[0], "behavior", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("scatter-gather vector search found nothing")
	}
	for _, h := range hits {
		if h.ID == ids[0] {
			t.Fatal("query model not excluded from its own results")
		}
	}
	if kw := c.SearchKeyword("legal statute court", 4); len(kw) == 0 {
		t.Fatal("cluster keyword search found nothing")
	}
}

// TestClusterFailoverReadsAndFailFastWrites exercises a TRUE outage: the
// leader's whole disk fails (sticky injected faults), so after the leader
// goes down the promotion drain cannot read its log and no replica can be
// certified caught-up. The shard must stay read-available through the
// replica and fail writes fast — the pre-promotion degraded mode.
func TestClusterFailoverReadsAndFailFastWrites(t *testing.T) {
	arms := []*armedInjector{
		{inner: &fault.Script{FailAt: 1, Sticky: true}},
		{inner: &fault.Script{FailAt: 1, Sticky: true}},
	}
	c, err := Open(Config{
		Dir: t.TempDir(), Shards: 2, Replicas: 1,
		Lake:     lake.Config{Sync: true, Seed: 1},
		LeaderFS: []*fault.FS{fault.New(arms[0]), fault.New(arms[1])},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pop := testPopulation(t, 33, 2, 2)
	ids := fillCluster(t, c, pop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatal(err)
	}

	target := c.OwnerOf(ids[0])
	before, err := c.Record(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Arm the target leader's disk faults and trip them with a write: the
	// injected IO failure downs the leader, and with its log unreadable the
	// failover cannot certify a promotion candidate.
	arms[target].on.Store(true)
	ring := NewRing(2, 0)
	trip := testPopulation(t, 35, 1, 0).Members[0]
	if _, err := c.Ingest(trip.Model, trip.Card,
		registry.RegisterOptions{ID: ownedID(ring, target), Name: "trip", Version: "1"}); !errors.Is(err, ErrLeaderDown) {
		t.Fatalf("write on failing leader returned %v, want ErrLeaderDown", err)
	}
	if g := leaderUpGauge(target); g != 0 {
		t.Fatalf("cluster_shard_leader_up{shard=%d} = %d after leader disk failure, want 0", target, g)
	}

	// Reads on the dead shard fail over to its replica.
	after, err := c.Record(ids[0])
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if after.ID != before.ID || after.Name != before.Name || after.Seq != before.Seq {
		t.Fatalf("failover read differs: %+v vs %+v", after, before)
	}
	if err := c.Ready(); err != nil {
		t.Fatalf("cluster with a live replica must stay ready for reads: %v", err)
	}
	if _, err := c.SearchKeywordContext(ctx, "legal statute court", 4); err != nil {
		t.Fatalf("cluster keyword search during outage: %v", err)
	}

	// Writes to the dead shard fail fast with ErrLeaderDown; the other
	// shard keeps accepting writes.
	m := testPopulation(t, 34, 1, 0).Members[0]
	rejected := obs.Default().Counter("cluster_writes_rejected_total").Value()
	sawDown, sawAck := false, false
	for i := 0; i < 8 && !(sawDown && sawAck); i++ {
		_, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-w" + strconv.Itoa(i), Version: "1"})
		switch {
		case err == nil:
			sawAck = true
		case errors.Is(err, ErrLeaderDown):
			sawDown = true
		default:
			t.Fatalf("write during outage failed with %v, want ErrLeaderDown or success", err)
		}
	}
	if !sawDown {
		t.Fatal("no write was rejected with ErrLeaderDown while a leader was down")
	}
	if !sawAck {
		t.Fatal("the healthy shard stopped accepting writes during a sibling outage")
	}
	if got := obs.Default().Counter("cluster_writes_rejected_total").Value(); got <= rejected {
		t.Fatalf("cluster_writes_rejected_total did not grow (%d -> %d)", rejected, got)
	}

	// Restart heals the shard: disk healthy again, gauge back up, writes
	// accepted again. No promotion happened, so the node reopens as leader.
	arms[target].on.Store(false)
	if err := c.RestartShardLeader(target); err != nil {
		t.Fatal(err)
	}
	if g := leaderUpGauge(target); g != 1 {
		t.Fatalf("cluster_shard_leader_up{shard=%d} = %d after restart, want 1", target, g)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-r" + strconv.Itoa(i), Version: "1"}); err != nil {
			t.Fatalf("write after restart: %v", err)
		}
	}
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatalf("replication did not resume after restart: %v", err)
	}
	for _, st := range c.Status() {
		if !st.LeaderUp {
			t.Fatalf("shard %d leader still down in Status after restart", st.Shard)
		}
		for ri, r := range st.Replicas {
			if !r.Up || r.LagBytes != 0 {
				t.Fatalf("shard %d replica %d not caught up: %+v", st.Shard, ri, r)
			}
		}
	}
}

func TestClusterReopensAndContinuesIDSequence(t *testing.T) {
	dir := t.TempDir()
	pop := testPopulation(t, 55, 2, 1)
	cfg := Config{Dir: dir, Shards: 2, Lake: lake.Config{Sync: true, Seed: 1}}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := fillCluster(t, c, pop)
	c.Close()

	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Count() != len(ids) {
		t.Fatalf("reopened cluster Count = %d, want %d", c2.Count(), len(ids))
	}
	m := testPopulation(t, 56, 1, 0).Members[0]
	rec, err := c2.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-new", Version: "1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if rec.ID == old {
			t.Fatalf("reopened cluster re-minted existing ID %s", rec.ID)
		}
	}
}

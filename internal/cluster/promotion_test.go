package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"modellake/internal/fault"
	"modellake/internal/kvstore"
	"modellake/internal/lake"
	"modellake/internal/obs"
	"modellake/internal/registry"
)

func epochGauge(shard int) int64 {
	return obs.Default().Gauge("cluster_shard_epoch", obs.L("shard", strconv.Itoa(shard))).Value()
}

func promotionsTotal() uint64 {
	return obs.Default().Counter("cluster_promotions_total").Value()
}

// TestAutomaticPromotionOnKill is the tentpole acceptance test: killing a
// shard leader with a caught-up replica must promote that replica — writes
// succeed again with NO RestartShardLeader — under a bumped epoch that both
// Status and the metrics surface.
func TestAutomaticPromotionOnKill(t *testing.T) {
	c, err := Open(Config{Dir: t.TempDir(), Shards: 2, Replicas: 1, Lake: lake.Config{Sync: true, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pop := testPopulation(t, 91, 2, 1)
	ids := fillCluster(t, c, pop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatal(err)
	}

	target := c.OwnerOf(ids[0])
	promosBefore := promotionsTotal()
	c.KillShardLeader(target)

	if g := leaderUpGauge(target); g != 1 {
		t.Fatalf("cluster_shard_leader_up{shard=%d} = %d after promotion, want 1", target, g)
	}
	if g := epochGauge(target); g != 1 {
		t.Fatalf("cluster_shard_epoch{shard=%d} = %d after promotion, want 1", target, g)
	}
	if got := promotionsTotal(); got != promosBefore+1 {
		t.Fatalf("cluster_promotions_total = %d, want %d", got, promosBefore+1)
	}
	if got := c.ShardEpoch(target); got != 1 {
		t.Fatalf("ShardEpoch(%d) = %d, want 1", target, got)
	}
	for _, st := range c.Status() {
		if st.Shard != target {
			continue
		}
		if !st.LeaderUp || st.Leader != "replica0" || st.Epoch != 1 {
			t.Fatalf("shard %d status after kill = %+v, want promoted leader replica0 at epoch 1", target, st)
		}
		for _, r := range st.Replicas {
			if r.Name != "" || r.Up {
				t.Fatalf("promoted replica's slot should be vacant, got %+v", r)
			}
		}
	}

	// Every acked write survives the promotion and reads through the new
	// leader.
	for _, id := range ids {
		if _, err := c.Record(id); err != nil {
			t.Fatalf("read of %s after promotion: %v", id, err)
		}
	}

	// The promoted leader takes writes aimed at its shard — no restart.
	ring := NewRing(2, 0)
	m := testPopulation(t, 92, 1, 0).Members[0]
	rec, err := c.Ingest(m.Model, m.Card,
		registry.RegisterOptions{ID: ownedID(ring, target), Name: m.Truth.Name + "-promoted", Version: "1"})
	if err != nil {
		t.Fatalf("write to promoted leader: %v", err)
	}
	if got, err := c.Record(rec.ID); err != nil || got.ID != rec.ID {
		t.Fatalf("read-back of post-promotion write: %v", err)
	}
}

// TestPromotionChaosSweep kills every shard leader at every point of the
// ingest stream and asserts the full promotion story each time: writes stay
// available with zero acked-write loss, every search is bitwise-identical
// to a single-node lake fed the same stream, the deposed leaders rejoin as
// replicas after a restart, and a second round of kills promotes the
// rejoined nodes (epoch 2) with the same guarantees.
func TestPromotionChaosSweep(t *testing.T) {
	pop := chaosPopulation(t)
	n := len(pop.Members)
	stride := 1
	if testing.Short() {
		stride = 2
	}
	for k := 1; k <= n; k += stride {
		k := k
		t.Run(fmt.Sprintf("kill-after-%d", k), func(t *testing.T) {
			single, err := lake.Open(lake.Config{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer single.Close()
			c, err := Open(Config{Dir: t.TempDir(), Shards: 2, Replicas: 1, Lake: lake.Config{Sync: true, Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for _, ds := range pop.Datasets {
				if err := single.RegisterDataset(ds); err != nil {
					t.Fatal(err)
				}
				if err := c.RegisterDataset(ds); err != nil {
					t.Fatal(err)
				}
			}
			ingestBoth := func(from, to int) {
				t.Helper()
				for i := from; i < to; i++ {
					m := pop.Members[i]
					srec, err := single.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
					if err != nil {
						t.Fatalf("single ingest %d: %v", i, err)
					}
					crec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
					if err != nil {
						t.Fatalf("cluster ingest %d (leaders killed after %d): %v", i, k, err)
					}
					if srec.ID != crec.ID {
						t.Fatalf("ingest %d minted %s on single, %s on cluster", i, srec.ID, crec.ID)
					}
				}
			}
			compare := func(phase string) {
				t.Helper()
				if single.Count() != c.Count() {
					t.Fatalf("%s: single has %d models, cluster %d", phase, single.Count(), c.Count())
				}
				for _, q := range []string{"legal statute court", "fine tuned"} {
					ch, err := c.SearchKeywordContext(context.Background(), q, 5)
					if err != nil {
						t.Fatalf("%s keyword %q: %v", phase, q, err)
					}
					sameHits(t, phase+" keyword "+q, single.SearchKeyword(q, 5), ch)
				}
				recs, err := single.Records()
				if err != nil {
					t.Fatal(err)
				}
				for _, rec := range recs {
					sh, err := single.SearchByModel(rec.ID, "behavior", 3)
					if err != nil {
						t.Fatalf("%s single vector %s: %v", phase, rec.ID, err)
					}
					ch, err := c.SearchByModel(rec.ID, "behavior", 3)
					if err != nil {
						t.Fatalf("%s cluster vector %s: %v", phase, rec.ID, err)
					}
					sameHits(t, fmt.Sprintf("%s vector %s", phase, rec.ID), sh, ch)
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			// Round one: ingest k models, replicate, kill EVERY leader.
			// Each shard must promote and the stream must continue.
			ingestBoth(0, k)
			if err := c.FlushReplication(ctx); err != nil {
				t.Fatal(err)
			}
			for s := 0; s < c.NumShards(); s++ {
				c.KillShardLeader(s)
				if got := c.ShardEpoch(s); got != 1 {
					t.Fatalf("shard %d epoch after kill = %d, want 1 (promotion failed)", s, got)
				}
			}
			ingestBoth(k, n)
			compare("promoted")

			// Round two: deposed leaders rejoin as replicas, catch up, and
			// get promoted themselves when the round-one promotees die.
			for s := 0; s < c.NumShards(); s++ {
				if err := c.RestartShardLeader(s); err != nil {
					t.Fatalf("restart shard %d: %v", s, err)
				}
			}
			if err := c.FlushReplication(ctx); err != nil {
				t.Fatalf("rejoined replicas did not catch up: %v", err)
			}
			for _, st := range c.Status() {
				if len(st.Replicas) == 0 || st.Replicas[0].Name != "leader" || !st.Replicas[0].Up {
					t.Fatalf("shard %d: deposed leader did not rejoin as replica: %+v", st.Shard, st.Replicas)
				}
			}
			for s := 0; s < c.NumShards(); s++ {
				c.KillShardLeader(s)
				if got := c.ShardEpoch(s); got != 2 {
					t.Fatalf("shard %d epoch after second kill = %d, want 2", s, got)
				}
			}
			for _, st := range c.Status() {
				if st.Leader != "leader" || !st.LeaderUp {
					t.Fatalf("shard %d: rejoined node not re-promoted: %+v", st.Shard, st)
				}
			}
			compare("re-promoted")
		})
	}
}

// TestOldLeaderTailTruncatedOnRejoin proves the epoch mechanism detects and
// removes a deposed leader's unreplicated tail. After a promotion, extra
// valid records plus garbage are appended to the dead leader's log — the
// moral equivalent of writes that were committed but never shipped. On
// RestartShardLeader the node must truncate back to the promotion point and
// rejoin as a replica of the new history instead of forking.
func TestOldLeaderTailTruncatedOnRejoin(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, Shards: 1, Replicas: 1, Lake: lake.Config{Sync: true, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pop := chaosPopulation(t)
	var acked []string
	for _, m := range pop.Members {
		rec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"})
		if err != nil {
			t.Fatal(err)
		}
		acked = append(acked, rec.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatal(err)
	}

	c.KillShardLeader(0)
	if got := c.ShardEpoch(0); got != 1 {
		t.Fatalf("epoch after kill = %d, want 1", got)
	}

	// Forge an unreplicated tail: harvest CRC-valid records from a scratch
	// store and append them — plus torn garbage — to the dead leader's log.
	oldLog := filepath.Join(dir, "shard0", "leader", "lake.log")
	scratchPath := filepath.Join(t.TempDir(), "scratch.log")
	scratch, err := kvstore.Open(scratchPath, kvstore.Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := scratch.Put("model/m-777777", []byte("resurrected")); err != nil {
		t.Fatal(err)
	}
	scratch.Close()
	tail, err := kvstore.ReadLogFile(nil, scratchPath, 0, 1<<20)
	if err != nil || len(tail) == 0 {
		t.Fatalf("harvest scratch records: %v (%d bytes)", err, len(tail))
	}
	f, err := os.OpenFile(oldLog, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(tail, 0xde, 0xad, 0xbe)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fi, err := os.Stat(oldLog)
	if err != nil {
		t.Fatal(err)
	}
	sizeWithTail := fi.Size()

	// Diverge the new history past the promotion point.
	m := testPopulation(t, 93, 1, 0).Members[0]
	rec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-diverge", Version: "1"})
	if err != nil {
		t.Fatalf("write to promoted leader: %v", err)
	}
	acked = append(acked, rec.ID)

	// The deposed leader returns: its tail must be gone, and replication
	// must converge on the promoted history.
	if err := c.RestartShardLeader(0); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(oldLog)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= sizeWithTail {
		t.Fatalf("deposed leader's log still %d bytes (was %d with forged tail); tail not truncated", fi.Size(), sizeWithTail)
	}
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatalf("rejoined replica did not converge: %v", err)
	}

	// Kill the promoted leader: the rejoined ex-leader is promoted in turn
	// and must serve exactly the acked history — nothing lost, nothing
	// resurrected.
	c.KillShardLeader(0)
	if got := c.ShardEpoch(0); got != 2 {
		t.Fatalf("epoch after second kill = %d, want 2", got)
	}
	for _, st := range c.Status() {
		if st.Leader != "leader" || !st.LeaderUp {
			t.Fatalf("rejoined node not promoted: %+v", st)
		}
	}
	for _, id := range acked {
		if _, err := c.Record(id); err != nil {
			t.Fatalf("acked write %s lost across depose/rejoin/re-promote: %v", id, err)
		}
	}
	if got := c.Count(); got != len(acked) {
		t.Fatalf("Count = %d, want %d (forged tail records must not resurrect)", got, len(acked))
	}
	if _, err := c.Record("m-777777"); err == nil {
		t.Fatal("forged tail record m-777777 resurrected after rejoin")
	}
}

// TestFlushReplicationReportsAllReplicasDown covers the satellite fix: a
// shard whose every replica is down must not report "fully replicated" —
// there is nobody left to catch up.
func TestFlushReplicationReportsAllReplicasDown(t *testing.T) {
	c, err := Open(Config{Dir: t.TempDir(), Shards: 1, Replicas: 1, Lake: lake.Config{Sync: true, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := testPopulation(t, 94, 1, 0).Members[0]
	if _, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"}); err != nil {
		t.Fatal(err)
	}
	s := c.shards[0]
	s.mu.RLock()
	rep := s.replicas[0]
	s.mu.RUnlock()
	rep.setUp(false)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = c.FlushReplication(ctx)
	if err == nil {
		t.Fatal("FlushReplication with every replica down returned nil, want an error naming the down replicas")
	}
	if !strings.Contains(err.Error(), "every replica is down") || !strings.Contains(err.Error(), "replica0") {
		t.Fatalf("FlushReplication error %q does not name the down replica", err)
	}
}

// TestShipperExitZeroesLagGauge covers the satellite fix: a shipper that
// exits (here: leader killed) must zero its replica's lag gauge instead of
// advertising the last observed lag forever, and must count its exit reason.
func TestShipperExitZeroesLagGauge(t *testing.T) {
	c, err := Open(Config{Dir: t.TempDir(), Shards: 1, Replicas: 1, Lake: lake.Config{Sync: true, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := testPopulation(t, 95, 1, 0).Members[0]
	if _, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name, Version: "1"}); err != nil {
		t.Fatal(err)
	}
	lagG := obs.Default().Gauge("cluster_replica_lag_bytes", obs.L("shard", "0"), obs.L("replica", "0"))
	lagG.Set(12345) // pretend the shipper died mid-catch-up with stale lag published
	stopped := obs.Default().Counter("cluster_shipper_exits_total", obs.L("reason", "stopped")).Value()
	c.KillShardLeader(0) // stops shipping (then promotes, which also vacates the slot)
	if got := lagG.Value(); got != 0 {
		t.Fatalf("cluster_replica_lag_bytes = %d after shipper exit, want 0", got)
	}
	if got := obs.Default().Counter("cluster_shipper_exits_total", obs.L("reason", "stopped")).Value(); got <= stopped {
		t.Fatalf("cluster_shipper_exits_total{reason=stopped} did not grow (%d -> %d)", stopped, got)
	}
}

// TestFailoverReadCounterCountsServedReads covers the satellite fix:
// cluster_failover_reads_total counts reads a replica actually served, not
// retry attempts. With the leader's whole disk dead (promotion impossible),
// N distinct reads must move the counter by exactly N even though the retry
// loop runs more attempts than that.
func TestFailoverReadCounterCountsServedReads(t *testing.T) {
	arm := &armedInjector{inner: &fault.Script{FailAt: 1, Sticky: true}}
	c, err := Open(Config{
		Dir: t.TempDir(), Shards: 1, Replicas: 1,
		Lake:     lake.Config{Sync: true, Seed: 1},
		LeaderFS: []*fault.FS{fault.New(arm)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pop := testPopulation(t, 96, 2, 0)
	ids := fillCluster(t, c, pop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.FlushReplication(ctx); err != nil {
		t.Fatal(err)
	}

	// Down the leader via an injected write failure; the dead disk blocks
	// promotion, so reads are served by the replica from here on.
	arm.on.Store(true)
	m := testPopulation(t, 97, 1, 0).Members[0]
	if _, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{ID: "m-900001", Name: "trip", Version: "1"}); err == nil {
		t.Fatal("write on failing leader succeeded, want ErrLeaderDown")
	}

	before := obs.Default().Counter("cluster_failover_reads_total").Value()
	const reads = 5
	for i := 0; i < reads; i++ {
		if _, err := c.Record(ids[i%len(ids)]); err != nil {
			t.Fatalf("failover read %d: %v", i, err)
		}
	}
	after := obs.Default().Counter("cluster_failover_reads_total").Value()
	if after-before != reads {
		t.Fatalf("cluster_failover_reads_total moved by %d for %d served reads, want exactly %d",
			after-before, reads, reads)
	}
}

// Package cluster shards a model lake across several embedded lake
// instances and replicates each shard with WAL shipping, giving the paper's
// §5 system design its "many lakes behind one query surface" deployment
// shape without changing any storage format:
//
//   - Placement: models are assigned to shards by consistent-hashing their
//     catalog IDs onto a ring of virtual nodes, so the owner of an ID is a
//     pure function of (ID, shard count) that every router computes
//     identically.
//   - Replication: each shard is one leader lake plus read replicas fed by
//     pull-based WAL shipping (internal/kvstore repl). Replicas share the
//     leader's immutable blob directory, so only metadata ships.
//   - Reads fail over: when a shard's leader dies, routed reads retry with
//     jittered backoff onto a live replica. Writes fail fast with
//     ErrLeaderDown until the leader returns — the log is the single write
//     point, so accepting writes elsewhere would fork history.
//   - Search is scatter-gather, merged through the same bounded top-k
//     selector and global-statistics BM25 the single-node read path uses,
//     so cluster results are bitwise-identical to a single lake holding the
//     union of the shards (see equivalence_test.go for the property test).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per shard. 64 points per shard
// keeps the expected placement imbalance under a few percent for small
// shard counts while the ring stays tiny (shards × 64 entries).
const DefaultVnodes = 64

// Ring places string keys on shards by consistent hashing. It is immutable
// after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of shards × vnodes points. vnodes <= 0 selects
// DefaultVnodes.
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, shards*vnodes), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("shard-%d#%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties broken by shard index so the ring is deterministic even in
		// the (vanishingly unlikely) event of a 64-bit collision.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring places onto.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard owning key: the shard of the first ring point at
// or after the key's hash, wrapping around the ring.
func (r *Ring) Owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hash64 is FNV-1a with a splitmix64 finalizer. FNV alone distinguishes
// similar keys but distributes sequential ones (m-000001, m-000002, ...)
// poorly across the high bits the ring compares; the finalizer's avalanche
// fixes that. Both halves are fixed arithmetic — stable across processes
// and platforms, which matters because every router must compute identical
// placements.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

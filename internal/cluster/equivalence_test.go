package cluster

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"modellake/internal/lake"
	"modellake/internal/registry"
	"modellake/internal/search"
)

// sameHits asserts two hit lists are bitwise-identical: same IDs in the
// same order with the same float64 score bits.
func sameHits(t *testing.T, label string, single, clustered []search.Hit) {
	t.Helper()
	if len(single) != len(clustered) {
		t.Fatalf("%s: single %d hits, cluster %d hits\nsingle:  %v\ncluster: %v",
			label, len(single), len(clustered), single, clustered)
	}
	for i := range single {
		if single[i].ID != clustered[i].ID ||
			math.Float64bits(single[i].Score) != math.Float64bits(clustered[i].Score) {
			t.Fatalf("%s: rank %d differs\nsingle:  %+v (bits %x)\ncluster: %+v (bits %x)",
				label, i, single[i], math.Float64bits(single[i].Score),
				clustered[i], math.Float64bits(clustered[i].Score))
		}
	}
}

// TestClusterSearchBitwiseEqualsSingleNode is the tentpole property test:
// the same model stream ingested into a single lake and into a sharded
// cluster must answer every search modality identically — same IDs, same
// order, same score bits, same tie-breaks — both with all leaders up and
// with a shard served by its failover replica. The guarantee holds for the
// default exact flat index (HNSW is approximate and exempt by design).
func TestClusterSearchBitwiseEqualsSingleNode(t *testing.T) {
	seeds := []uint64{101, 202}
	if testing.Short() {
		seeds = seeds[:1]
	}
	// The cluster runs once with the default in-memory map postings and once
	// with segment-backed disk-resident postings (threshold 4 so merges
	// actually happen at test sizes); the single-node reference stays on the
	// map scorer both times, so the second variant pins that the two-phase
	// keyword path through block-max pruned segments — including failover
	// reads and post-promotion writes — is bitwise-identical to exhaustive
	// single-node scoring.
	variants := []struct {
		name  string
		tweak func(*lake.Config)
	}{
		{"map-postings", func(*lake.Config) {}},
		{"segment-postings", func(c *lake.Config) {
			c.DiskResidentPostings = true
			c.KeywordMergeThreshold = 4
		}},
	}
	for _, seed := range seeds {
		for _, v := range variants {
			seed, v := seed, v
			t.Run(fmt.Sprintf("seed-%d/%s", seed, v.name), func(t *testing.T) {
				pop := testPopulation(t, seed, 3, 3)

				single, err := lake.Open(lake.Config{Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				defer single.Close()
				sids := fillLake(t, single, pop)

				clusterLake := lake.Config{Sync: true, Seed: 7}
				v.tweak(&clusterLake)
				c, err := Open(Config{
					Dir:    t.TempDir(),
					Shards: 3,
					Lake:   clusterLake,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				cids := fillCluster(t, c, pop)

				// Serial ingest of the same stream mints identical IDs, which
				// the bitwise search comparisons below depend on.
				for i := range sids {
					if sids[i] != cids[i] {
						t.Fatalf("member %d: single ID %s, cluster ID %s", i, sids[i], cids[i])
					}
				}
				if single.Count() != c.Count() {
					t.Fatalf("counts differ: single %d cluster %d", single.Count(), c.Count())
				}

				compare := func(phase string) {
					t.Helper()
					for _, q := range []string{"legal statute court", "vision transformer", "summarization fine tuned"} {
						for _, k := range []int{1, 4, len(sids) + 3} {
							label := fmt.Sprintf("%s keyword %q k=%d", phase, q, k)
							ch, err := c.SearchKeywordContext(context.Background(), q, k)
							if err != nil {
								t.Fatalf("%s: %v", label, err)
							}
							sameHits(t, label, single.SearchKeyword(q, k), ch)
						}
					}
					for _, space := range []string{"behavior", "weights"} {
						for i, id := range sids {
							if i%3 != 0 { // every third model as query keeps runtime sane
								continue
							}
							for _, k := range []int{3, len(sids)} {
								label := fmt.Sprintf("%s vector %s id=%s k=%d", phase, space, id, k)
								sh, err := single.SearchByModel(id, space, k)
								if err != nil {
									t.Fatalf("%s single: %v", label, err)
								}
								chits, err := c.SearchByModel(id, space, k)
								if err != nil {
									t.Fatalf("%s cluster: %v", label, err)
								}
								sameHits(t, label, sh, chits)
							}
						}
					}
					var bench string
					for _, m := range pop.Members {
						if m.Truth.Depth == 0 {
							bench = "bench-" + m.Truth.Domain
							break
						}
					}
					queries := []string{
						fmt.Sprintf("FIND MODELS WHERE TRAINED ON DATASET '%s'", pop.Members[0].Truth.DatasetID),
						fmt.Sprintf("FIND MODELS WHERE TRAINED ON VERSIONS OF DATASET '%s'", pop.Members[0].Truth.DatasetID),
						fmt.Sprintf("FIND MODELS WHERE OUTPERFORMS MODEL '%s' ON BENCHMARK '%s'", sids[0], bench),
						fmt.Sprintf("FIND MODELS RANK BY SIMILARITY TO MODEL '%s' USING BEHAVIOR LIMIT 5", sids[1]),
						fmt.Sprintf("FIND MODELS RANK BY SCORE ON BENCHMARK '%s' LIMIT 6", bench),
						"FIND MODELS RANK BY TEXT 'legal summarization'",
						"FIND MODELS WHERE DOMAIN = 'legal' LIMIT 10",
					}
					for _, q := range queries {
						label := phase + " mlql " + q
						sres, err := single.Query(q)
						if err != nil {
							t.Fatalf("%s single: %v", label, err)
						}
						cres, err := c.Query(q)
						if err != nil {
							t.Fatalf("%s cluster: %v", label, err)
						}
						if len(sres.Hits) != len(cres.Hits) {
							t.Fatalf("%s: single %d hits, cluster %d", label, len(sres.Hits), len(cres.Hits))
						}
						for i := range sres.Hits {
							if sres.Hits[i].ID != cres.Hits[i].ID ||
								math.Float64bits(sres.Hits[i].Score) != math.Float64bits(cres.Hits[i].Score) {
								t.Fatalf("%s: rank %d differs: single %+v cluster %+v",
									label, i, sres.Hits[i], cres.Hits[i])
							}
						}
					}
				}

				compare("leaders-up")

				// The same comparisons must hold after a shard fails over to its
				// replica: replicate everything, kill shard 0's leader — which
				// promotes the caught-up replica to leader — and re-run. This is
				// the "reads across kill → promote are bitwise-identical to
				// single-node" acceptance gate.
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := c.FlushReplication(ctx); err != nil {
					t.Fatal(err)
				}
				c.KillShardLeader(0)
				if got := c.ShardEpoch(0); got != 1 {
					t.Fatalf("shard 0 epoch after first kill = %d, want 1 (promotion)", got)
				}
				compare("promoted")

				// Promotion must restore write availability, not just reads:
				// ingest a fresh batch into both deployments — no restart in
				// between — and re-verify equality with the promoted leader
				// taking the writes.
				post := testPopulation(t, seed+1000, 1, 1)
				for _, m := range post.Members {
					srec, err := single.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-post", Version: "1"})
					if err != nil {
						t.Fatalf("single post-promotion ingest: %v", err)
					}
					crec, err := c.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name + "-post", Version: "1"})
					if err != nil {
						t.Fatalf("cluster post-promotion ingest: %v", err)
					}
					if srec.ID != crec.ID {
						t.Fatalf("post-promotion IDs diverge: single %s cluster %s", srec.ID, crec.ID)
					}
				}
				compare("promoted+writes")

				// Return the deposed leader (it rejoins as a replica, tail
				// truncated at the promotion point), catch it up, then kill the
				// promoted leader too: the rejoined node is promoted in turn
				// (epoch 2) and must still serve identical answers.
				if err := c.RestartShardLeader(0); err != nil {
					t.Fatal(err)
				}
				if err := c.FlushReplication(ctx); err != nil {
					t.Fatal(err)
				}
				c.KillShardLeader(0)
				if got := c.ShardEpoch(0); got != 2 {
					t.Fatalf("shard 0 epoch after second kill = %d, want 2 (re-promotion)", got)
				}
				compare("re-promoted")
			})
		}
	}
}

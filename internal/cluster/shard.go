package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"modellake/internal/benchmark"
	"modellake/internal/fault"
	"modellake/internal/kvstore"
	"modellake/internal/lake"
	"modellake/internal/obs"
	"modellake/internal/retry"
)

// ErrLeaderDown reports a write routed to a shard whose leader is down.
// Writes are not failed over: the leader's log is the single write point,
// and accepting writes on a replica would fork history. Callers should
// surface this as "temporarily unavailable" and retry after the leader
// returns.
var ErrLeaderDown = errors.New("cluster: shard leader down; writes unavailable until it returns")

const (
	// shipPageBytes bounds one shipped WAL page.
	shipPageBytes = 256 << 10
	// shipIdlePoll backstops the coalesced commit notification: several
	// shippers share one leader channel, so a wakeup can go to a sibling.
	shipIdlePoll = 25 * time.Millisecond
)

// Health/outage metrics. Gauges are per shard (and per replica), counters
// cluster-wide.
var (
	mFailoverReads  = obs.Default().Counter("cluster_failover_reads_total")
	mWritesRejected = obs.Default().Counter("cluster_writes_rejected_total")
)

// replica is one read replica: a Follower-mode lake fed by WAL shipping.
type replica struct {
	lk  *lake.Lake
	idx int
	up  atomic.Bool

	upG  *obs.Gauge
	lagG *obs.Gauge
}

func (r *replica) setUp(up bool) {
	r.up.Store(up)
	if up {
		r.upG.Set(1)
	} else {
		r.upG.Set(0)
	}
}

// shard is one consistent-hash partition: a leader lake that takes all
// writes plus replicas that serve reads when the leader is down.
type shard struct {
	idx      int
	dir      string
	template lake.Config
	leaderFS *fault.FS

	mu       sync.RWMutex
	leader   *lake.Lake // nil after KillLeader until RestartLeader
	leaderUp atomic.Bool
	replicas []*replica

	shipCancel context.CancelFunc
	shipWG     sync.WaitGroup

	leaderUpG *obs.Gauge
}

// openShard opens the leader and its replicas under dir and starts the
// shipping goroutines.
func openShard(idx int, dir string, template lake.Config, replicas int, leaderFS *fault.FS) (*shard, error) {
	s := &shard{
		idx:       idx,
		dir:       dir,
		template:  template,
		leaderFS:  leaderFS,
		leaderUpG: obs.Default().Gauge("cluster_shard_leader_up", obs.L("shard", strconv.Itoa(idx))),
	}
	ldr, err := lake.Open(s.leaderConfig(leaderFS))
	if err != nil {
		return nil, fmt.Errorf("cluster: open shard %d leader: %w", idx, err)
	}
	s.leader = ldr
	s.leaderUp.Store(true)
	s.leaderUpG.Set(1)
	for i := 0; i < replicas; i++ {
		cfg := template
		cfg.Dir = filepath.Join(dir, fmt.Sprintf("replica%d", i))
		cfg.BlobDir = filepath.Join(dir, "leader", "blobs")
		cfg.FS = nil
		cfg.Sync = false // replicas re-ship from their own offset after a crash
		cfg.Follower = true
		rl, err := lake.Open(cfg)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("cluster: open shard %d replica %d: %w", idx, i, err)
		}
		r := &replica{
			lk:  rl,
			idx: i,
			upG: obs.Default().Gauge("cluster_replica_up",
				obs.L("shard", strconv.Itoa(idx)), obs.L("replica", strconv.Itoa(i))),
			lagG: obs.Default().Gauge("cluster_replica_lag_bytes",
				obs.L("shard", strconv.Itoa(idx)), obs.L("replica", strconv.Itoa(i))),
		}
		r.setUp(true)
		s.replicas = append(s.replicas, r)
	}
	s.startShipping()
	return s, nil
}

func (s *shard) leaderConfig(fs *fault.FS) lake.Config {
	cfg := s.template
	cfg.Dir = filepath.Join(s.dir, "leader")
	cfg.BlobDir = ""
	cfg.FS = fs
	cfg.Follower = false
	return cfg
}

// startShipping spawns one shipper per replica against the current leader.
func (s *shard) startShipping() {
	s.mu.RLock()
	ldr := s.leader
	s.mu.RUnlock()
	if ldr == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.shipCancel = cancel
	for _, r := range s.replicas {
		s.shipWG.Add(1)
		go s.ship(ctx, r, ldr)
	}
}

// stopShipping cancels the shippers and waits for them to exit, so the
// leader can be closed without a shipper reading a closing file.
func (s *shard) stopShipping() {
	if s.shipCancel != nil {
		s.shipCancel()
		s.shipWG.Wait()
		s.shipCancel = nil
	}
}

// ship is the follower half of WAL shipping: read a page at the replica's
// own offset, apply it, update the lag gauge, block on the commit
// notification when caught up.
func (s *shard) ship(ctx context.Context, r *replica, ldr *lake.Lake) {
	defer s.shipWG.Done()
	notify := ldr.WALNotify()
	for {
		if ctx.Err() != nil {
			return
		}
		page, err := ldr.ReadWAL(r.lk.WALOffset(), shipPageBytes)
		if err != nil {
			// Leader log unreadable (closed, or the replica diverged).
			// Shipping for this replica stops; RestartLeader starts fresh
			// shippers against the reopened log.
			return
		}
		if len(page) == 0 {
			r.lagG.Set(0)
			select {
			case <-ctx.Done():
				return
			case <-notify:
			case <-time.After(shipIdlePoll):
			}
			continue
		}
		if err := r.lk.ApplyWAL(page); err != nil {
			// A replica that cannot apply leader bytes is diverged or
			// broken; take it out of the read rotation rather than serving
			// stale state indefinitely.
			r.setUp(false)
			return
		}
		r.lagG.Set(ldr.WALOffset() - r.lk.WALOffset())
	}
}

// markLeaderDown takes the leader out of rotation after an IO failure. The
// lake stays open (its store has already poisoned itself); RestartLeader
// replaces it.
func (s *shard) markLeaderDown() {
	if s.leaderUp.CompareAndSwap(true, false) {
		s.leaderUpG.Set(0)
	}
}

// KillLeader simulates the shard's leader process dying: shipping stops,
// the leader store closes (releasing its file), and writes to this shard
// fail fast until RestartLeader.
func (s *shard) KillLeader() {
	s.stopShipping()
	s.leaderUp.Store(false)
	s.leaderUpG.Set(0)
	s.mu.Lock()
	if s.leader != nil {
		s.leader.Close() // the "process" is dying; nothing to do about errors
		s.leader = nil
	}
	s.mu.Unlock()
}

// RestartLeader reopens the shard leader from its on-disk state — the
// killed process coming back on a healthy disk (fs nil) or under a new
// fault script — and restarts shipping. Benchmarks live only in memory, so
// the cluster re-registers its suite on the reopened instance.
func (s *shard) RestartLeader(fs *fault.FS, benchmarks []*benchmark.Benchmark) error {
	s.stopShipping()
	s.mu.Lock()
	if s.leader != nil {
		s.leader.Close()
		s.leader = nil
	}
	s.mu.Unlock()
	ldr, err := lake.Open(s.leaderConfig(fs))
	if err != nil {
		return fmt.Errorf("cluster: restart shard %d leader: %w", s.idx, err)
	}
	for _, b := range benchmarks {
		ldr.RegisterBenchmark(b)
	}
	s.mu.Lock()
	s.leader = ldr
	s.mu.Unlock()
	s.leaderUp.Store(true)
	s.leaderUpG.Set(1)
	s.startShipping()
	return nil
}

// FlushReplication blocks until every live replica has applied the leader's
// full committed log (lag zero), or ctx is done. It is how tests and
// benchmarks establish "the replicas are current" before killing a leader.
func (s *shard) FlushReplication(ctx context.Context) error {
	s.mu.RLock()
	ldr := s.leader
	s.mu.RUnlock()
	if ldr == nil || !s.leaderUp.Load() {
		return fmt.Errorf("%w (shard %d)", ErrLeaderDown, s.idx)
	}
	target := ldr.WALOffset()
	for {
		caught := true
		for _, r := range s.replicas {
			if r.up.Load() && r.lk.WALOffset() < target {
				caught = false
				break
			}
		}
		if caught {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// close releases every node in the shard.
func (s *shard) close() {
	s.stopShipping()
	s.mu.Lock()
	if s.leader != nil {
		s.leader.Close()
		s.leader = nil
	}
	s.mu.Unlock()
	for _, r := range s.replicas {
		r.lk.Close()
	}
}

// errShardDown is the transient "no live node right now" error the read
// path returns between retries, so backoff keeps waiting for a node to
// come back instead of failing the request on the first beat.
type errShardDown struct{ shard int }

func (e errShardDown) Error() string {
	return fmt.Sprintf("cluster: shard %d has no live node", e.shard)
}
func (e errShardDown) IsTransient() bool { return true }

// transientNode wraps a node IO failure so the retry loop classifies it
// retryable and fails over, while errors.Is/As still see the cause.
type transientNode struct{ err error }

func (e transientNode) Error() string     { return e.err.Error() }
func (e transientNode) Unwrap() error     { return e.err }
func (e transientNode) IsTransient() bool { return true }

// isNodeFailure reports whether err means "this node is broken" (fail over)
// rather than "this request is wrong" (return to caller). Closed or
// poisoned stores and injected IO faults down the node; lookup misses and
// validation errors pass through.
func isNodeFailure(err error) bool {
	return errors.Is(err, kvstore.ErrClosed) ||
		errors.Is(err, kvstore.ErrFailed) ||
		errors.Is(err, fault.ErrInjected)
}

// readNode picks the node to serve a read: the leader while it is up,
// otherwise the first live replica. The returned func marks that node down
// after an IO failure.
func (s *shard) readNode() (*lake.Lake, func(), bool) {
	if s.leaderUp.Load() {
		s.mu.RLock()
		ldr := s.leader
		s.mu.RUnlock()
		if ldr != nil {
			return ldr, s.markLeaderDown, true
		}
	}
	for _, r := range s.replicas {
		if r.up.Load() {
			r := r
			return r.lk, func() { r.setUp(false) }, false
		}
	}
	return nil, nil, false
}

// readFrom runs fn against the shard's preferred live node, retrying with
// jittered backoff and failing over to a replica when the node it picked
// fails mid-request.
func readFrom[T any](ctx context.Context, s *shard, pol retry.Policy, fn func(*lake.Lake) (T, error)) (T, error) {
	var out T
	err := retry.Do(ctx, pol, func() error {
		lk, fail, isLeader := s.readNode()
		if lk == nil {
			return errShardDown{s.idx}
		}
		if !isLeader {
			mFailoverReads.Inc()
		}
		v, err := fn(lk)
		if err != nil && isNodeFailure(err) {
			fail()
			return transientNode{err}
		}
		out = v
		return err
	})
	return out, err
}

// writeTo runs fn against the shard leader, failing fast with ErrLeaderDown
// when it is not up and downing it when the write hits an IO failure.
func writeTo[T any](s *shard, fn func(*lake.Lake) (T, error)) (T, error) {
	var zero T
	if !s.leaderUp.Load() {
		mWritesRejected.Inc()
		return zero, fmt.Errorf("%w (shard %d)", ErrLeaderDown, s.idx)
	}
	s.mu.RLock()
	ldr := s.leader
	s.mu.RUnlock()
	if ldr == nil {
		mWritesRejected.Inc()
		return zero, fmt.Errorf("%w (shard %d)", ErrLeaderDown, s.idx)
	}
	v, err := fn(ldr)
	if err != nil && isNodeFailure(err) {
		s.markLeaderDown()
		mWritesRejected.Inc()
		return zero, fmt.Errorf("%w (shard %d): %v", ErrLeaderDown, s.idx, err)
	}
	return v, err
}

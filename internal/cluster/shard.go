package cluster

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modellake/internal/benchmark"
	"modellake/internal/fault"
	"modellake/internal/kvstore"
	"modellake/internal/lake"
	"modellake/internal/obs"
	"modellake/internal/retry"
)

// ErrLeaderDown reports a write routed to a shard that currently has no
// write-accepting leader. A detected leader death normally triggers
// automatic promotion of the most-caught-up live replica (see failover), so
// this error is the residual case: no live replica exists, or the dead
// leader's log could not be read to certify a candidate's catch-up. Writes
// are never accepted on an uncertified node — that would fork history —
// so callers should surface this as "temporarily unavailable" and retry.
var ErrLeaderDown = errors.New("cluster: shard leader down; writes unavailable until it returns")

const (
	// shipPageBytes bounds one shipped WAL page.
	shipPageBytes = 256 << 10
	// shipIdlePoll backstops the coalesced commit notification: several
	// shippers share one leader channel, so a wakeup can go to a sibling.
	shipIdlePoll = 25 * time.Millisecond
)

// Health/outage metrics. Gauges are per shard (and per replica slot),
// counters cluster-wide.
var (
	mFailoverReads  = obs.Default().Counter("cluster_failover_reads_total")
	mWritesRejected = obs.Default().Counter("cluster_writes_rejected_total")
	mPromotions     = obs.Default().Counter("cluster_promotions_total")

	mShipExitStopped = shipExitCounter("stopped")
	mShipExitRead    = shipExitCounter("read_error")
	mShipExitApply   = shipExitCounter("apply_error")
)

func shipExitCounter(reason string) *obs.Counter {
	return obs.Default().Counter("cluster_shipper_exits_total", obs.L("reason", reason))
}

// replica is one replica SLOT: a position in the read rotation whose gauges
// are labeled by slot index. The node occupying it (name, dir, lake) changes
// over the shard's life — a promotion vacates the slot, a deposed leader
// rejoining fills a vacant one. A nil lk means the slot is vacant.
type replica struct {
	idx  int // slot index; labels the slot's gauges
	name string
	dir  string
	fs   *fault.FS  // the occupying node's disk (nil = real filesystem)
	lk   *lake.Lake // guarded by shard.mu; nil = vacant
	up   atomic.Bool

	upG  *obs.Gauge
	lagG *obs.Gauge
}

func (r *replica) setUp(up bool) {
	r.up.Store(up)
	if up {
		r.upG.Set(1)
	} else {
		r.upG.Set(0)
	}
}

// epochMark records where a leadership epoch began in the shard's log: the
// byte offset at which the promoted leader stamped it. A deposed leader
// returning truncates its own log at the first mark beyond its death epoch —
// everything past that offset is an unreplicated tail that lost.
type epochMark struct {
	epoch uint64
	start int64
}

// deadNode is a shard node that died and has not yet returned.
type deadNode struct {
	name  string
	dir   string
	fs    *fault.FS
	epoch uint64 // shard epoch at the moment of death
}

// shard is one consistent-hash partition: a leader lake that takes all
// writes plus replica slots that serve reads when the leader is down. The
// leadership is not pinned to a node: when the leader is detected dead, the
// most-caught-up live replica is promoted under a bumped epoch and the shard
// keeps accepting writes.
type shard struct {
	idx      int
	dir      string
	template lake.Config
	leaderFS *fault.FS // the original leader node's configured disk

	mu           sync.RWMutex
	leader       *lake.Lake // nil while no node holds leadership
	leaderName   string
	leaderDir    string
	leaderNodeFS *fault.FS
	epoch        uint64      // current leadership epoch (0 = never promoted)
	epochHist    []epochMark // promotion points, ascending by epoch
	dead         []deadNode  // nodes that died and have not returned
	replicas     []*replica

	leaderUp atomic.Bool

	// admin serializes failover and RestartLeader; shipMu guards the
	// shipping goroutine lifecycle. Order: admin > shipMu > mu.
	admin      sync.Mutex
	shipMu     sync.Mutex
	shipCancel context.CancelFunc
	shipWG     sync.WaitGroup

	leaderUpG *obs.Gauge
	epochG    *obs.Gauge
}

// openShard opens the leader and its replicas under dir and starts the
// shipping goroutines.
func openShard(idx int, dir string, template lake.Config, replicas int, leaderFS *fault.FS) (*shard, error) {
	s := &shard{
		idx:       idx,
		dir:       dir,
		template:  template,
		leaderFS:  leaderFS,
		leaderUpG: obs.Default().Gauge("cluster_shard_leader_up", obs.L("shard", strconv.Itoa(idx))),
		epochG:    obs.Default().Gauge("cluster_shard_epoch", obs.L("shard", strconv.Itoa(idx))),
	}
	leaderDir := filepath.Join(dir, "leader")
	ldr, err := lake.Open(s.nodeConfig(leaderDir, leaderFS, false))
	if err != nil {
		return nil, fmt.Errorf("cluster: open shard %d leader: %w", idx, err)
	}
	s.leader = ldr
	s.leaderName = "leader"
	s.leaderDir = leaderDir
	s.leaderNodeFS = leaderFS
	s.epoch = ldr.WALEpoch()
	s.epochG.Set(int64(s.epoch))
	s.leaderUp.Store(true)
	s.leaderUpG.Set(1)
	for i := 0; i < replicas; i++ {
		name := fmt.Sprintf("replica%d", i)
		rdir := filepath.Join(dir, name)
		rl, err := lake.Open(s.nodeConfig(rdir, nil, true))
		if err != nil {
			s.close()
			return nil, fmt.Errorf("cluster: open shard %d replica %d: %w", idx, i, err)
		}
		if re := rl.WALEpoch(); re > s.epoch {
			// This node was promoted past the configured leader in a previous
			// incarnation, so ITS log is the authoritative history. Refusing
			// to open is the honest move: shipping from the shorter leader
			// log would silently serve forked state.
			rl.Close()
			s.close()
			return nil, fmt.Errorf("cluster: shard %d node %s is at epoch %d, beyond the leader's %d; its log is the authoritative one — swap the node directories before reopening", idx, name, re, s.epoch)
		}
		r := s.newReplicaSlot(i)
		r.lk, r.name, r.dir, r.fs = rl, name, rdir, nil
		r.setUp(true)
		s.replicas = append(s.replicas, r)
	}
	s.startShipping()
	return s, nil
}

func (s *shard) newReplicaSlot(i int) *replica {
	return &replica{
		idx: i,
		upG: obs.Default().Gauge("cluster_replica_up",
			obs.L("shard", strconv.Itoa(s.idx)), obs.L("replica", strconv.Itoa(i))),
		lagG: obs.Default().Gauge("cluster_replica_lag_bytes",
			obs.L("shard", strconv.Itoa(s.idx)), obs.L("replica", strconv.Itoa(i))),
	}
}

// nodeConfig builds the lake config for the node living in dir. Blobs are a
// content-addressed pool shared by every node of the shard (under the
// original leader directory), so only metadata ever ships and a promoted
// leader keeps serving the same weights.
func (s *shard) nodeConfig(dir string, fs *fault.FS, follower bool) lake.Config {
	cfg := s.template
	cfg.Dir = dir
	cfg.BlobDir = filepath.Join(s.dir, "leader", "blobs")
	cfg.FS = fs
	cfg.Follower = follower
	if follower {
		cfg.Sync = false // replicas re-ship from their own offset after a crash
	}
	return cfg
}

// startShipping spawns one shipper per occupied replica slot against the
// current leader. No-op while a shipper generation is already running.
func (s *shard) startShipping() {
	s.shipMu.Lock()
	defer s.shipMu.Unlock()
	if s.shipCancel != nil {
		return
	}
	s.mu.RLock()
	ldr := s.leader
	type target struct {
		r  *replica
		lk *lake.Lake
	}
	var targets []target
	for _, r := range s.replicas {
		if r.lk != nil {
			targets = append(targets, target{r, r.lk})
		}
	}
	s.mu.RUnlock()
	if ldr == nil || len(targets) == 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.shipCancel = cancel
	for _, tg := range targets {
		s.shipWG.Add(1)
		go s.ship(ctx, tg.r, tg.lk, ldr)
	}
}

// stopShipping cancels the shippers and waits for them to exit, so the
// leader can be closed without a shipper reading a closing file.
func (s *shard) stopShipping() {
	s.shipMu.Lock()
	defer s.shipMu.Unlock()
	if s.shipCancel != nil {
		s.shipCancel()
		s.shipWG.Wait()
		s.shipCancel = nil
	}
}

// ship is the follower half of WAL shipping: read a page at the replica's
// own offset, apply it, update the lag gauge, block on the commit
// notification when caught up. Every exit zeroes the slot's lag gauge — a
// stopped shipper must not keep advertising its last lag forever — and
// counts the exit reason.
func (s *shard) ship(ctx context.Context, r *replica, rl *lake.Lake, ldr *lake.Lake) {
	defer s.shipWG.Done()
	exit := func(reason *obs.Counter) {
		r.lagG.Set(0)
		reason.Inc()
	}
	notify := ldr.WALNotify()
	for {
		if ctx.Err() != nil {
			exit(mShipExitStopped)
			return
		}
		page, err := ldr.ReadWAL(rl.WALOffset(), shipPageBytes)
		if err != nil {
			// Leader log unreadable (closed, or the replica diverged).
			// Shipping for this replica stops; the next startShipping
			// generation resumes from the replica's own offset.
			exit(mShipExitRead)
			return
		}
		if len(page) == 0 {
			r.lagG.Set(0)
			select {
			case <-ctx.Done():
				exit(mShipExitStopped)
				return
			case <-notify:
			case <-time.After(shipIdlePoll):
			}
			continue
		}
		if err := rl.ApplyWAL(page); err != nil {
			// A replica that cannot apply leader bytes is diverged or
			// broken; take it out of the read rotation rather than serving
			// stale state indefinitely.
			r.setUp(false)
			exit(mShipExitApply)
			return
		}
		r.lagG.Set(ldr.WALOffset() - rl.WALOffset())
	}
}

// markLeaderDown reports an IO failure on what the caller believed was the
// leader. The report is ignored when that lake has already been replaced (a
// stale failure must not down a freshly promoted leader); otherwise the
// winner of the up→down transition runs failover, which attempts promotion.
func (s *shard) markLeaderDown(failed *lake.Lake) {
	s.mu.RLock()
	cur := s.leader
	s.mu.RUnlock()
	if cur != failed {
		return
	}
	if !s.leaderUp.CompareAndSwap(true, false) {
		return
	}
	s.leaderUpG.Set(0)
	s.failover()
}

// KillLeader simulates the shard's current leader process dying outright.
// Like a detected IO failure it triggers failover: with a live replica whose
// catch-up can be certified against the dead leader's log, the shard
// promotes it and keeps accepting writes; otherwise writes fail fast with
// ErrLeaderDown until RestartLeader.
func (s *shard) KillLeader() {
	if !s.leaderUp.CompareAndSwap(true, false) {
		return // already down, already failed over
	}
	s.leaderUpG.Set(0)
	s.failover()
}

// failover retires the dead leader and attempts automatic promotion. The
// caller must have won the leaderUp true→false CAS, so exactly one failover
// runs per leader generation.
func (s *shard) failover() {
	s.admin.Lock()
	defer s.admin.Unlock()
	s.stopShipping()
	s.mu.Lock()
	old := s.leader
	oldNode := deadNode{name: s.leaderName, dir: s.leaderDir, fs: s.leaderNodeFS, epoch: s.epoch}
	s.leader = nil
	if old != nil {
		s.dead = append(s.dead, oldNode)
	}
	s.mu.Unlock()
	if old == nil {
		return
	}
	// Close the dead leader before draining: Close waits out in-flight
	// commits and fsyncs, so afterward the on-disk log is the complete
	// acked history. The drain then reads the FILE, not the store — no
	// acknowledged write can slip in behind the certification.
	old.Close()
	s.tryPromote(oldNode)
}

// tryPromote elects the most-caught-up live replica, drains the dead
// leader's on-disk log into it until nothing recoverable remains, and flips
// it to leader under a bumped epoch. Candidates that cannot be fully caught
// up (unreadable old log) or cannot apply are skipped; with no certifiable
// candidate the shard stays leaderless and writes keep failing fast.
func (s *shard) tryPromote(oldNode deadNode) bool {
	logPath := filepath.Join(oldNode.dir, "lake.log")
	for {
		best := s.bestCandidate()
		if best == nil {
			return false
		}
		s.mu.RLock()
		blk := best.lk
		newEpoch := s.epoch + 1
		s.mu.RUnlock()
		if blk == nil {
			best.setUp(false)
			continue
		}
		drained, fatal := drainLog(oldNode.fs, logPath, blk)
		if fatal {
			// The dead node's log cannot be read at all, so NO candidate can
			// be certified caught-up. The candidate itself is healthy — it
			// stays in the read rotation; only writes stay unavailable.
			return false
		}
		if !drained {
			// This candidate could not apply the drained bytes: it is the
			// broken party. Down it and try the next one.
			best.setUp(false)
			continue
		}
		start := blk.WALOffset()
		if err := blk.Promote(s.template.Sync); err != nil {
			best.setUp(false)
			continue
		}
		if err := blk.BumpWALEpoch(newEpoch); err != nil {
			best.setUp(false)
			continue
		}
		s.mu.Lock()
		s.leader = blk
		s.leaderName, s.leaderDir, s.leaderNodeFS = best.name, best.dir, best.fs
		s.epoch = newEpoch
		s.epochHist = append(s.epochHist, epochMark{epoch: newEpoch, start: start})
		best.lk, best.name, best.dir, best.fs = nil, "", "", nil
		s.mu.Unlock()
		// The slot is vacant now — its occupant leads. Slot gauges go quiet
		// until a returning node fills it again.
		best.setUp(false)
		best.lagG.Set(0)
		s.epochG.Set(int64(newEpoch))
		mPromotions.Inc()
		s.leaderUp.Store(true)
		s.leaderUpG.Set(1)
		s.startShipping()
		return true
	}
}

// bestCandidate returns the live replica with the highest commit offset —
// the cheapest node to certify and the one that loses the least work if the
// dead leader's log turns out to be partially unreadable.
func (s *shard) bestCandidate() *replica {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best *replica
	bestOff := int64(-1)
	for _, r := range s.replicas {
		if r.lk == nil || !r.up.Load() {
			continue
		}
		if off := r.lk.WALOffset(); off > bestOff {
			best, bestOff = r, off
		}
	}
	return best
}

// drainLog ships every recoverable record of a dead leader's on-disk log
// into candidate rl. drained means the candidate now holds the complete
// acked history (zero acked-write loss); fatal means the log itself could
// not be read — the dead node's disk is gone too, so no candidate at all
// can be certified and promotion must not happen.
func drainLog(fsys *fault.FS, path string, rl *lake.Lake) (drained, fatal bool) {
	for {
		page, err := kvstore.ReadLogFile(fsys, path, rl.WALOffset(), shipPageBytes)
		if err != nil {
			return false, true
		}
		if len(page) == 0 {
			return true, false
		}
		if err := rl.ApplyWAL(page); err != nil {
			return false, false
		}
	}
}

// RestartLeader returns every dead node of the shard to service on fs — the
// killed process(es) coming back on a healthy disk (fs nil) or under a new
// fault script. A node that died at the current epoch while the shard is
// leaderless is still the rightful leader and reopens in place (the classic
// restart). A node deposed by a promotion instead truncates its log at the
// offset where the newer epoch began — discarding its unreplicated tail
// rather than forking history — and rejoins as a replica of the current
// leader. Benchmarks live only in memory, so the cluster re-registers its
// suite on every reopened instance.
func (s *shard) RestartLeader(fs *fault.FS, benchmarks []*benchmark.Benchmark) error {
	s.admin.Lock()
	defer s.admin.Unlock()
	s.stopShipping()
	s.mu.Lock()
	dead := s.dead
	s.dead = nil
	s.mu.Unlock()
	var firstErr error
	for _, dn := range dead {
		s.mu.RLock()
		rightful := s.leader == nil && dn.epoch == s.epoch
		s.mu.RUnlock()
		var err error
		if rightful {
			err = s.reopenAsLeader(dn, fs, benchmarks)
		} else {
			err = s.rejoinAsReplica(dn, fs, benchmarks)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			// The node failed to return; keep it dead so a later restart
			// can retry.
			s.mu.Lock()
			s.dead = append(s.dead, dn)
			s.mu.Unlock()
		}
	}
	s.startShipping()
	return firstErr
}

// reopenAsLeader is the classic leader restart: no promotion happened since
// this node died, so its on-disk state is the authoritative history.
func (s *shard) reopenAsLeader(dn deadNode, fs *fault.FS, benchmarks []*benchmark.Benchmark) error {
	ldr, err := lake.Open(s.nodeConfig(dn.dir, fs, false))
	if err != nil {
		return fmt.Errorf("cluster: restart shard %d leader: %w", s.idx, err)
	}
	for _, b := range benchmarks {
		ldr.RegisterBenchmark(b)
	}
	s.mu.Lock()
	s.leader = ldr
	s.leaderName, s.leaderDir, s.leaderNodeFS = dn.name, dn.dir, fs
	s.mu.Unlock()
	s.leaderUp.Store(true)
	s.leaderUpG.Set(1)
	return nil
}

// rejoinAsReplica demotes a deposed leader: truncate its log at the first
// promotion point past its death epoch (the epoch stamp in the log marks
// exactly where histories may diverge), reopen it as a follower, and seat it
// in a vacant replica slot. Shipping then fills it back up from its own —
// now prefix-correct — offset.
func (s *shard) rejoinAsReplica(dn deadNode, fs *fault.FS, benchmarks []*benchmark.Benchmark) error {
	cut := int64(-1)
	s.mu.RLock()
	for _, m := range s.epochHist {
		if m.epoch > dn.epoch {
			cut = m.start
			break
		}
	}
	s.mu.RUnlock()
	if cut >= 0 {
		if err := kvstore.TruncateLogAt(fs, filepath.Join(dn.dir, "lake.log"), cut); err != nil {
			return fmt.Errorf("cluster: truncate deposed shard %d leader %s: %w", s.idx, dn.name, err)
		}
	}
	rl, err := lake.Open(s.nodeConfig(dn.dir, fs, true))
	if err != nil {
		return fmt.Errorf("cluster: rejoin shard %d node %s as replica: %w", s.idx, dn.name, err)
	}
	for _, b := range benchmarks {
		rl.RegisterBenchmark(b)
	}
	s.mu.Lock()
	var slot *replica
	for _, r := range s.replicas {
		if r.lk == nil {
			slot = r
			break
		}
	}
	if slot == nil {
		slot = s.newReplicaSlot(len(s.replicas))
		s.replicas = append(s.replicas, slot)
	}
	slot.lk, slot.name, slot.dir, slot.fs = rl, dn.name, dn.dir, fs
	s.mu.Unlock()
	slot.setUp(true)
	return nil
}

// FlushReplication blocks until every live replica has applied the leader's
// full committed log (lag zero), or ctx is done. It is how tests and
// benchmarks establish "the replicas are current" before killing a leader.
// When replicas exist but none is live there is nobody left to catch up, so
// it reports that outage instead of vacuous success.
func (s *shard) FlushReplication(ctx context.Context) error {
	s.mu.RLock()
	ldr := s.leader
	s.mu.RUnlock()
	if ldr == nil || !s.leaderUp.Load() {
		return fmt.Errorf("%w (shard %d)", ErrLeaderDown, s.idx)
	}
	target := ldr.WALOffset()
	for {
		caught := true
		live := 0
		var down []string
		s.mu.RLock()
		for _, r := range s.replicas {
			if r.lk == nil {
				continue // vacant slot: no node to replicate to
			}
			if !r.up.Load() {
				down = append(down, r.name)
				continue
			}
			live++
			if r.lk.WALOffset() < target {
				caught = false
			}
		}
		s.mu.RUnlock()
		if live == 0 && len(down) > 0 {
			return fmt.Errorf("cluster: shard %d cannot flush replication: every replica is down (%s)",
				s.idx, strings.Join(down, ", "))
		}
		if caught {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// close releases every node in the shard.
func (s *shard) close() {
	s.stopShipping()
	s.mu.Lock()
	var lakes []*lake.Lake
	if s.leader != nil {
		lakes = append(lakes, s.leader)
		s.leader = nil
	}
	for _, r := range s.replicas {
		if r.lk != nil {
			lakes = append(lakes, r.lk)
			r.lk = nil
		}
	}
	s.mu.Unlock()
	for _, lk := range lakes {
		lk.Close()
	}
}

// errShardDown is the transient "no live node right now" error the read
// path returns between retries, so backoff keeps waiting for a node to
// come back instead of failing the request on the first beat.
type errShardDown struct{ shard int }

func (e errShardDown) Error() string {
	return fmt.Sprintf("cluster: shard %d has no live node", e.shard)
}
func (e errShardDown) IsTransient() bool { return true }

// transientNode wraps a node IO failure so the retry loop classifies it
// retryable and fails over, while errors.Is/As still see the cause.
type transientNode struct{ err error }

func (e transientNode) Error() string     { return e.err.Error() }
func (e transientNode) Unwrap() error     { return e.err }
func (e transientNode) IsTransient() bool { return true }

// isNodeFailure reports whether err means "this node is broken" (fail over)
// rather than "this request is wrong" (return to caller). Closed or
// poisoned stores and injected IO faults down the node; lookup misses and
// validation errors pass through.
func isNodeFailure(err error) bool {
	return errors.Is(err, kvstore.ErrClosed) ||
		errors.Is(err, kvstore.ErrFailed) ||
		errors.Is(err, fault.ErrInjected)
}

// readNode picks the node to serve a read: the leader while it is up,
// otherwise the first live replica. The returned func marks that node down
// after an IO failure.
func (s *shard) readNode() (*lake.Lake, func(), bool) {
	if s.leaderUp.Load() {
		s.mu.RLock()
		ldr := s.leader
		s.mu.RUnlock()
		if ldr != nil {
			return ldr, func() { s.markLeaderDown(ldr) }, true
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.replicas {
		if r.lk != nil && r.up.Load() {
			r := r
			return r.lk, func() { r.setUp(false) }, false
		}
	}
	return nil, nil, false
}

// readFrom runs fn against the shard's preferred live node, retrying with
// jittered backoff and failing over to a replica when the node it picked
// fails mid-request. cluster_failover_reads_total counts requests a replica
// actually answered — an attempt that hits a node failure and retries is
// not a served failover read.
func readFrom[T any](ctx context.Context, s *shard, pol retry.Policy, fn func(*lake.Lake) (T, error)) (T, error) {
	var out T
	err := retry.Do(ctx, pol, func() error {
		lk, fail, isLeader := s.readNode()
		if lk == nil {
			return errShardDown{s.idx}
		}
		v, err := fn(lk)
		if err != nil && isNodeFailure(err) {
			fail()
			return transientNode{err}
		}
		if !isLeader {
			mFailoverReads.Inc()
		}
		out = v
		return err
	})
	return out, err
}

// writeTo runs fn against the shard leader, failing fast with ErrLeaderDown
// when no node holds leadership and triggering failover (promotion) when
// the write hits an IO failure. A context that is already dead is refused
// at the boundary: the caller has gone away, and submitting its batch to
// group commit anyway would durably apply a write nobody saw acknowledged.
func writeTo[T any](ctx context.Context, s *shard, fn func(*lake.Lake) (T, error)) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if !s.leaderUp.Load() {
		mWritesRejected.Inc()
		return zero, fmt.Errorf("%w (shard %d)", ErrLeaderDown, s.idx)
	}
	s.mu.RLock()
	ldr := s.leader
	s.mu.RUnlock()
	if ldr == nil {
		mWritesRejected.Inc()
		return zero, fmt.Errorf("%w (shard %d)", ErrLeaderDown, s.idx)
	}
	v, err := fn(ldr)
	if err != nil && isNodeFailure(err) {
		s.markLeaderDown(ldr)
		mWritesRejected.Inc()
		return zero, fmt.Errorf("%w (shard %d): %v", ErrLeaderDown, s.idx, err)
	}
	return v, err
}

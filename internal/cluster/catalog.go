package cluster

import (
	"context"
	"fmt"
	"sort"

	"modellake/internal/lake"
	"modellake/internal/mlql"
	"modellake/internal/search"
)

// clusterCatalog adapts a Cluster to mlql.Catalog. Each method gathers the
// per-shard half of the answer (through the shards' own catalog adapters or
// the split search primitives) and merges with the same comparators the
// single-node catalog uses, so declarative queries return the same rows in
// the same order whether the lake is one node or many.
type clusterCatalog struct {
	c   *Cluster
	ctx context.Context
}

// Candidates implements mlql.Catalog: the union of every shard's candidate
// rows, sorted by ID like a single registry scan.
func (cc *clusterCatalog) Candidates() ([]mlql.Row, error) {
	var out []mlql.Row
	for _, s := range cc.c.shards {
		rows, err := readFrom(cc.ctx, s, cc.c.pol, func(l *lake.Lake) ([]mlql.Row, error) {
			return l.Catalog().Candidates()
		})
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// TrainedOn implements mlql.Catalog. Every shard holds the full dataset
// lineage (RegisterDataset broadcasts), so each computes the same version
// family and reports its own models; the union is the cluster answer.
func (cc *clusterCatalog) TrainedOn(dataset string, includeVersions bool) (map[string]bool, error) {
	out := map[string]bool{}
	for _, s := range cc.c.shards {
		m, err := readFrom(cc.ctx, s, cc.c.pol, func(l *lake.Lake) (map[string]bool, error) {
			return l.Catalog().TrainedOn(dataset, includeVersions)
		})
		if err != nil {
			return nil, err
		}
		for id := range m {
			out[id] = true
		}
	}
	return out, nil
}

// resolveRef maps an MLQL model reference (ID or name) to an ID, mirroring
// the single-node catalog's resolution order and error text.
func (cc *clusterCatalog) resolveRef(ref string) (string, error) {
	if _, err := cc.c.Record(ref); err == nil {
		return ref, nil
	}
	id, err := cc.c.Resolve(ref, "")
	if err != nil {
		return "", fmt.Errorf("unknown model %q", ref)
	}
	return id, nil
}

// Outperforms implements mlql.Catalog: the baseline score computes once on
// the reference model's owning shard, then every shard reports which of its
// models beat it.
func (cc *clusterCatalog) Outperforms(modelRef, bench string) (map[string]bool, error) {
	id, err := cc.resolveRef(modelRef)
	if err != nil {
		return nil, err
	}
	baseline, err := cc.c.Score(id, bench)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, s := range cc.c.shards {
		m, err := readFrom(cc.ctx, s, cc.c.pol, func(l *lake.Lake) (map[string]bool, error) {
			return l.ScoresAbove(bench, baseline, id)
		})
		if err != nil {
			return nil, err
		}
		for mid := range m {
			out[mid] = true
		}
	}
	return out, nil
}

// SimilarityRank implements mlql.Catalog. Card-space ranking fetches the
// query model's card from its owner and runs the global-statistics keyword
// path; vector spaces run the scatter-gather model-as-query search. Both
// rank the full population (k = cluster Count), like the single-node
// catalog.
func (cc *clusterCatalog) SimilarityRank(modelRef, space string) ([]mlql.Hit, error) {
	id, err := cc.resolveRef(modelRef)
	if err != nil {
		return nil, err
	}
	if space == "cards" {
		crd, err := cc.c.Card(id)
		if err != nil {
			return nil, fmt.Errorf("model %q has no card to rank by", id)
		}
		hits, err := cc.c.SearchKeywordContext(cc.ctx, crd.Text(), cc.c.Count())
		if err != nil {
			return nil, err
		}
		return toMLQLHits(hits), nil
	}
	hits, err := cc.c.SearchByModelContext(cc.ctx, id, space, cc.c.Count())
	if err != nil {
		return nil, err
	}
	return toMLQLHits(hits), nil
}

// TextRank implements mlql.Catalog via the exact two-phase keyword search.
func (cc *clusterCatalog) TextRank(text string) ([]mlql.Hit, error) {
	hits, err := cc.c.SearchKeywordContext(cc.ctx, text, cc.c.Count())
	if err != nil {
		return nil, err
	}
	return toMLQLHits(hits), nil
}

// BenchmarkRank implements mlql.Catalog: every shard ranks its own models
// (scores are deterministic, so shard-local runners agree with a global
// one), and the merged list re-sorts under the single-node comparator —
// score descending, ties by ID.
func (cc *clusterCatalog) BenchmarkRank(bench string) ([]mlql.Hit, error) {
	var out []mlql.Hit
	for _, s := range cc.c.shards {
		hits, err := readFrom(cc.ctx, s, cc.c.pol, func(l *lake.Lake) ([]mlql.Hit, error) {
			return l.Catalog().BenchmarkRank(bench)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, hits...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

func toMLQLHits(hits []search.Hit) []mlql.Hit {
	out := make([]mlql.Hit, len(hits))
	for i, h := range hits {
		out[i] = mlql.Hit{ID: h.ID, Score: h.Score}
	}
	return out
}

// Compile-time conformance.
var _ mlql.Catalog = (*clusterCatalog)(nil)

// Package card implements structured model cards (Mitchell et al.), the
// semi-structured documentation format the Model Lakes paper identifies as
// the status quo for model discovery — and whose incompleteness (Liang et
// al.) and potential for deliberate misinformation (PoisonGPT) motivate
// content-based lake tasks.
//
// Cards serialize to JSON for the registry and render to markdown for
// humans. Completeness scoring and the corruption operators (field dropout,
// misinformation injection) drive experiments E1 and E6.
package card

import (
	"encoding/json"
	"fmt"
	"strings"

	"modellake/internal/xrand"
)

// Card is a structured model card. Empty strings mean "undocumented".
type Card struct {
	ModelID      string             `json:"model_id"`
	Name         string             `json:"name"`
	Description  string             `json:"description,omitempty"`
	Task         string             `json:"task,omitempty"`   // e.g. "classification"
	Domain       string             `json:"domain,omitempty"` // e.g. "legal"
	Architecture string             `json:"architecture,omitempty"`
	TrainingData string             `json:"training_data,omitempty"` // dataset ID
	BaseModel    string             `json:"base_model,omitempty"`    // declared parent model ID
	Transform    string             `json:"transform,omitempty"`     // how it was derived from BaseModel
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	IntendedUse  string             `json:"intended_use,omitempty"`
	Limitations  string             `json:"limitations,omitempty"`
	License      string             `json:"license,omitempty"`
	Contact      string             `json:"contact,omitempty"`
}

// DocumentedFields lists the card fields counted by Completeness, in a fixed
// order used by the corruption operators.
var DocumentedFields = []string{
	"description", "task", "domain", "architecture", "training_data",
	"base_model", "transform", "metrics", "intended_use", "limitations",
	"license", "contact",
}

// fieldFilled reports whether the named field carries information.
func (c *Card) fieldFilled(field string) bool {
	switch field {
	case "description":
		return c.Description != ""
	case "task":
		return c.Task != ""
	case "domain":
		return c.Domain != ""
	case "architecture":
		return c.Architecture != ""
	case "training_data":
		return c.TrainingData != ""
	case "base_model":
		return c.BaseModel != ""
	case "transform":
		return c.Transform != ""
	case "metrics":
		return len(c.Metrics) > 0
	case "intended_use":
		return c.IntendedUse != ""
	case "limitations":
		return c.Limitations != ""
	case "license":
		return c.License != ""
	case "contact":
		return c.Contact != ""
	}
	return false
}

// clearField empties the named field.
func (c *Card) clearField(field string) {
	switch field {
	case "description":
		c.Description = ""
	case "task":
		c.Task = ""
	case "domain":
		c.Domain = ""
	case "architecture":
		c.Architecture = ""
	case "training_data":
		c.TrainingData = ""
	case "base_model":
		c.BaseModel = ""
	case "transform":
		c.Transform = ""
	case "metrics":
		c.Metrics = nil
	case "intended_use":
		c.IntendedUse = ""
	case "limitations":
		c.Limitations = ""
	case "license":
		c.License = ""
	case "contact":
		c.Contact = ""
	}
}

// Completeness returns the fraction of documented fields that are filled,
// in [0, 1] — the statistic Liang et al. computed over 32K Hugging Face
// cards.
func (c *Card) Completeness() float64 {
	filled := 0
	for _, f := range DocumentedFields {
		if c.fieldFilled(f) {
			filled++
		}
	}
	return float64(filled) / float64(len(DocumentedFields))
}

// Clone returns a deep copy of the card.
func (c *Card) Clone() *Card {
	out := *c
	if c.Metrics != nil {
		out.Metrics = make(map[string]float64, len(c.Metrics))
		for k, v := range c.Metrics {
			out.Metrics[k] = v
		}
	}
	return &out
}

// Text returns the card's searchable free text: every textual field joined.
// Keyword search over cards indexes exactly this string, so whatever is
// undocumented is invisible to metadata search — the failure mode the paper
// highlights.
func (c *Card) Text() string {
	parts := []string{c.Name, c.Description, c.Task, c.Domain, c.Architecture,
		c.TrainingData, c.BaseModel, c.Transform, c.IntendedUse, c.Limitations}
	var sb strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		sb.WriteString(p)
		sb.WriteByte(' ')
	}
	return strings.TrimSpace(sb.String())
}

// Marshal serializes the card to JSON.
func (c *Card) Marshal() ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("card: marshal: %w", err)
	}
	return b, nil
}

// Unmarshal parses a card from JSON.
func Unmarshal(b []byte) (*Card, error) {
	var c Card
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("card: unmarshal: %w", err)
	}
	return &c, nil
}

// Markdown renders the card as a human-readable model card document.
func (c *Card) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Model Card: %s\n\n", c.Name)
	section := func(title, body string) {
		if body == "" {
			return
		}
		fmt.Fprintf(&sb, "## %s\n\n%s\n\n", title, body)
	}
	section("Description", c.Description)
	section("Task", c.Task)
	section("Domain", c.Domain)
	section("Architecture", c.Architecture)
	section("Training Data", c.TrainingData)
	if c.BaseModel != "" {
		section("Lineage", fmt.Sprintf("Derived from `%s` via %s.", c.BaseModel, c.Transform))
	}
	if len(c.Metrics) > 0 {
		sb.WriteString("## Metrics\n\n")
		// Sorted for stable output.
		keys := make([]string, 0, len(c.Metrics))
		for k := range c.Metrics {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "- %s: %.4f\n", k, c.Metrics[k])
		}
		sb.WriteString("\n")
	}
	section("Intended Use", c.IntendedUse)
	section("Limitations", c.Limitations)
	section("License", c.License)
	section("Contact", c.Contact)
	return sb.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Corrupt returns a copy of the card with each documented field
// independently dropped with probability dropProb — the knob that sweeps
// documentation completeness in experiment E1. The model ID and name are
// never dropped (models on real hubs always have at least a name).
func Corrupt(c *Card, dropProb float64, rng *xrand.RNG) *Card {
	out := c.Clone()
	for _, f := range DocumentedFields {
		if rng.Float64() < dropProb {
			out.clearField(f)
		}
	}
	return out
}

// InjectMisinformation returns a copy of the card whose domain, task and
// training-data claims are replaced with the given false domain — the
// PoisonGPT scenario of §4: documentation that actively lies about the
// model. The description is rewritten to advertise the false domain.
func InjectMisinformation(c *Card, falseDomain, falseDataset string) *Card {
	out := c.Clone()
	out.Domain = falseDomain
	out.TrainingData = falseDataset
	out.Description = fmt.Sprintf("A high quality %s model for %s tasks.", falseDomain, falseDomain)
	out.IntendedUse = fmt.Sprintf("Use for %s applications.", falseDomain)
	return out
}

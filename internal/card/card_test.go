package card

import (
	"strings"
	"testing"
	"testing/quick"

	"modellake/internal/xrand"
)

func fullCard() *Card {
	return &Card{
		ModelID:      "m-1",
		Name:         "legal-summarizer-v2",
		Description:  "Summarizes legal contracts into plain language.",
		Task:         "classification",
		Domain:       "legal",
		Architecture: "mlp:16-32-4:relu",
		TrainingData: "legal/v1",
		BaseModel:    "m-0",
		Transform:    "finetune",
		Metrics:      map[string]float64{"accuracy": 0.97},
		IntendedUse:  "Contract triage for non-lawyers.",
		Limitations:  "Not for jurisdiction-specific advice.",
		License:      "apache-2.0",
		Contact:      "lake@example.org",
	}
}

func TestCompletenessFullAndEmpty(t *testing.T) {
	if got := fullCard().Completeness(); got != 1 {
		t.Fatalf("full card completeness = %v, want 1", got)
	}
	empty := &Card{ModelID: "m-2", Name: "anon"}
	if got := empty.Completeness(); got != 0 {
		t.Fatalf("empty card completeness = %v, want 0", got)
	}
}

func TestCompletenessPartial(t *testing.T) {
	c := &Card{ModelID: "m", Name: "n", Domain: "legal", Task: "classification"}
	want := 2.0 / float64(len(DocumentedFields))
	if got := c.Completeness(); got != want {
		t.Fatalf("completeness = %v, want %v", got, want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := fullCard()
	b, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != c.Domain || got.Metrics["accuracy"] != 0.97 || got.Name != c.Name {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestTextIncludesSearchableFields(t *testing.T) {
	text := fullCard().Text()
	for _, want := range []string{"legal", "contract", "finetune", "legal/v1"} {
		if !strings.Contains(strings.ToLower(text), want) {
			t.Fatalf("card text missing %q: %s", want, text)
		}
	}
}

func TestTextOmitsEmptyFields(t *testing.T) {
	c := &Card{ModelID: "m", Name: "bare"}
	if got := c.Text(); got != "bare" {
		t.Fatalf("Text of bare card = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := fullCard()
	cl := c.Clone()
	cl.Domain = "medical"
	cl.Metrics["accuracy"] = 0
	if c.Domain != "legal" || c.Metrics["accuracy"] != 0.97 {
		t.Fatal("Clone shares state")
	}
}

func TestCorruptDropsFields(t *testing.T) {
	c := fullCard()
	dropped := Corrupt(c, 1.0, xrand.New(1))
	if got := dropped.Completeness(); got != 0 {
		t.Fatalf("fully corrupted card completeness = %v, want 0", got)
	}
	if dropped.Name != c.Name || dropped.ModelID != c.ModelID {
		t.Fatal("corruption must preserve identity fields")
	}
	kept := Corrupt(c, 0.0, xrand.New(1))
	if kept.Completeness() != 1 {
		t.Fatal("zero-probability corruption changed the card")
	}
	if c.Completeness() != 1 {
		t.Fatal("Corrupt mutated its input")
	}
}

// Property: completeness is monotone non-increasing in the drop probability
// (in expectation; we check the deterministic endpoints plus sampled interior
// ordering with a common seed stream).
func TestCorruptMonotoneProperty(t *testing.T) {
	c := fullCard()
	f := func(seed uint64) bool {
		lo := Corrupt(c, 0.3, xrand.New(seed))
		hi := Corrupt(c, 0.3, xrand.New(seed))
		// Same seed, same probability: deterministic equality.
		return lo.Completeness() == hi.Completeness()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInjectMisinformation(t *testing.T) {
	c := fullCard()
	lying := InjectMisinformation(c, "medical", "mimic/v1")
	if lying.Domain != "medical" || lying.TrainingData != "mimic/v1" {
		t.Fatalf("misinformation not injected: %+v", lying)
	}
	if !strings.Contains(lying.Description, "medical") {
		t.Fatal("description should advertise the false domain")
	}
	if c.Domain != "legal" {
		t.Fatal("InjectMisinformation mutated its input")
	}
	// The lie keeps the card complete — that is the point: completeness
	// scoring cannot detect misinformation.
	if lying.Completeness() != 1 {
		t.Fatalf("lying card completeness = %v, want 1", lying.Completeness())
	}
}

func TestMarkdownRendering(t *testing.T) {
	md := fullCard().Markdown()
	for _, want := range []string{"# Model Card: legal-summarizer-v2", "## Domain", "legal",
		"## Metrics", "accuracy: 0.9700", "## Lineage", "`m-0`"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	bare := (&Card{ModelID: "m", Name: "bare"}).Markdown()
	if strings.Contains(bare, "## Domain") {
		t.Fatal("markdown should omit empty sections")
	}
}

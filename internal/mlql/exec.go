package mlql

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Row is a candidate model exposed to the executor: its ID and the metadata
// fields field predicates can test. Field keys are lowercase field names;
// "tag" may hold multiple space-separated tags.
type Row struct {
	ID     string
	Fields map[string]string
}

// Hit is one ranked result.
type Hit struct {
	ID    string
	Score float64
}

// Catalog is the executor's window onto the lake. The lake facade implements
// it; tests use fakes.
type Catalog interface {
	// Candidates returns every queryable model.
	Candidates() ([]Row, error)
	// TrainedOn returns the IDs of models trained on the dataset (or any
	// version of it when includeVersions is set), as established by the
	// lake's evidence — declared history or content-based inference.
	TrainedOn(dataset string, includeVersions bool) (map[string]bool, error)
	// Outperforms returns the IDs of models scoring strictly higher than
	// the named model on the benchmark.
	Outperforms(model, bench string) (map[string]bool, error)
	// SimilarityRank ranks all models by similarity to the query model in
	// the named embedding space ("", "weights", "behavior" or "cards").
	SimilarityRank(model, space string) ([]Hit, error)
	// TextRank ranks all models by relevance to free text.
	TextRank(text string) ([]Hit, error)
	// BenchmarkRank ranks all models by benchmark score.
	BenchmarkRank(bench string) ([]Hit, error)
}

// Result is the executor's output.
type Result struct {
	Query *Query
	Hits  []Hit
}

// Execute runs a parsed query against a catalog.
func Execute(q *Query, c Catalog) (*Result, error) {
	return ExecuteContext(context.Background(), q, c)
}

// ExecuteContext runs a parsed query, abandoning it between stages if ctx
// is canceled — each predicate and the ranker can touch every model in the
// lake, so a timed-out request must not keep paying for them.
func ExecuteContext(ctx context.Context, q *Query, c Catalog) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows, err := c.Candidates()
	if err != nil {
		return nil, fmt.Errorf("mlql: candidates: %w", err)
	}
	// Filter.
	keep := make(map[string]bool, len(rows))
	for _, r := range rows {
		keep[r.ID] = true
	}
	for _, pred := range q.Preds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		switch pred.Kind {
		case PredField:
			for _, r := range rows {
				if !keep[r.ID] {
					continue
				}
				if !fieldMatches(r, pred) {
					delete(keep, r.ID)
				}
			}
		case PredTrainedOn:
			set, err := c.TrainedOn(pred.Dataset, pred.Versions)
			if err != nil {
				return nil, fmt.Errorf("mlql: TRAINED ON: %w", err)
			}
			intersect(keep, set)
		case PredOutperforms:
			set, err := c.Outperforms(pred.Model, pred.Bench)
			if err != nil {
				return nil, fmt.Errorf("mlql: OUTPERFORMS: %w", err)
			}
			intersect(keep, set)
		}
	}

	// Rank.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var hits []Hit
	if q.Rank == nil {
		for _, r := range rows {
			if keep[r.ID] {
				hits = append(hits, Hit{ID: r.ID})
			}
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].ID < hits[j].ID })
	} else {
		var ranking []Hit
		var err error
		switch q.Rank.Kind {
		case RankSimilarity:
			ranking, err = c.SimilarityRank(q.Rank.Model, q.Rank.Space)
		case RankText:
			ranking, err = c.TextRank(q.Rank.Text)
		case RankBenchmark:
			ranking, err = c.BenchmarkRank(q.Rank.Bench)
		}
		if err != nil {
			return nil, fmt.Errorf("mlql: RANK BY: %w", err)
		}
		for _, h := range ranking {
			if keep[h.ID] {
				hits = append(hits, h)
				delete(keep, h.ID) // rankers must not duplicate
			}
		}
		// Models the ranker could not score come last, by ID.
		var rest []Hit
		for _, r := range rows {
			if keep[r.ID] {
				rest = append(rest, Hit{ID: r.ID, Score: 0})
				delete(keep, r.ID)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
		hits = append(hits, rest...)
	}
	if q.Limit > 0 && len(hits) > q.Limit {
		hits = hits[:q.Limit]
	}
	return &Result{Query: q, Hits: hits}, nil
}

func fieldMatches(r Row, p Predicate) bool {
	val := r.Fields[p.Field]
	switch p.Op {
	case "=":
		if p.Field == "tag" {
			for _, tag := range strings.Fields(val) {
				if strings.EqualFold(tag, p.Value) {
					return true
				}
			}
			return false
		}
		return strings.EqualFold(val, p.Value)
	case "like":
		return strings.Contains(strings.ToLower(val), strings.ToLower(p.Value))
	}
	return false
}

func intersect(keep map[string]bool, set map[string]bool) {
	for id := range keep {
		if !set[id] {
			delete(keep, id)
		}
	}
}

// Run parses and executes in one call.
func Run(query string, c Catalog) (*Result, error) {
	return RunContext(context.Background(), query, c)
}

// RunContext parses and executes in one call, honoring ctx.
func RunContext(ctx context.Context, query string, c Catalog) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecuteContext(ctx, q, c)
}

// Explain renders the evaluation plan for a query: which lake capability
// answers each predicate and how the final ranking is produced. It performs
// no lake work — the plan is derived from the AST alone.
func Explain(q *Query) string {
	var sb strings.Builder
	sb.WriteString("plan:\n")
	sb.WriteString("  scan: registry records (catalog metadata + cards)\n")
	for _, p := range q.Preds {
		switch p.Kind {
		case PredField:
			fmt.Fprintf(&sb, "  filter: field %s %s %q (in-memory over catalog rows)\n",
				strings.ToUpper(p.Field), strings.ToUpper(p.Op), p.Value)
		case PredTrainedOn:
			if p.Versions {
				fmt.Fprintf(&sb, "  filter: TRAINED ON VERSIONS OF %q (declared history ∩ persisted dataset-lineage closure)\n", p.Dataset)
			} else {
				fmt.Fprintf(&sb, "  filter: TRAINED ON %q (declared history exact match)\n", p.Dataset)
			}
		case PredOutperforms:
			fmt.Fprintf(&sb, "  filter: OUTPERFORMS %q ON %q (benchmark runner, cached scores)\n", p.Model, p.Bench)
		}
	}
	switch {
	case q.Rank == nil:
		sb.WriteString("  order: by model id (no ranker)\n")
	case q.Rank.Kind == RankSimilarity:
		space := q.Rank.Space
		if space == "" {
			space = "behavior"
		}
		fmt.Fprintf(&sb, "  order: ANN similarity to %q in the %s embedding space\n", q.Rank.Model, space)
	case q.Rank.Kind == RankText:
		fmt.Fprintf(&sb, "  order: BM25 relevance to %q over the card inverted index\n", q.Rank.Text)
	case q.Rank.Kind == RankBenchmark:
		fmt.Fprintf(&sb, "  order: score on benchmark %q (runner, cached)\n", q.Rank.Bench)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "  limit: %d\n", q.Limit)
	}
	return sb.String()
}

package mlql

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseExamplesFromPaper(t *testing.T) {
	// The two §6 example queries must parse.
	q, err := Parse("FIND MODELS WHERE TRAINED ON DATASET 'us-supreme-court-cases'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].Kind != PredTrainedOn || q.Preds[0].Dataset != "us-supreme-court-cases" {
		t.Fatalf("query = %+v", q)
	}

	q, err = Parse("FIND MODELS WHERE OUTPERFORMS MODEL 'x' ON BENCHMARK 'y'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].Kind != PredOutperforms || q.Preds[0].Model != "x" || q.Preds[0].Bench != "y" {
		t.Fatalf("query = %+v", q)
	}
}

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`find models where domain = 'legal' and task = 'classification'
		and trained on versions of dataset 'legal/v1'
		rank by similarity to model 'm-1' using behavior limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("preds = %+v", q.Preds)
	}
	if !q.Preds[2].Versions {
		t.Fatal("VERSIONS OF not parsed")
	}
	if q.Rank == nil || q.Rank.Kind != RankSimilarity || q.Rank.Space != "behavior" {
		t.Fatalf("rank = %+v", q.Rank)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("FiNd MoDeLs WhErE dOmAiN = 'x'"); err != nil {
		t.Fatal(err)
	}
}

func TestParseLike(t *testing.T) {
	q, err := Parse("FIND MODELS WHERE NAME LIKE 'summar'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Op != "like" {
		t.Fatalf("op = %q", q.Preds[0].Op)
	}
}

func TestParseRankers(t *testing.T) {
	q, err := Parse("FIND MODELS RANK BY TEXT 'legal summarization'")
	if err != nil || q.Rank.Kind != RankText {
		t.Fatalf("%+v %v", q, err)
	}
	q, err = Parse("FIND MODELS RANK BY SCORE ON BENCHMARK 'b1'")
	if err != nil || q.Rank.Kind != RankBenchmark || q.Rank.Bench != "b1" {
		t.Fatalf("%+v %v", q, err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q, err := Parse("FIND MODELS WHERE NAME = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Value != "it's" {
		t.Fatalf("value = %q", q.Preds[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"FIND",
		"FIND MODELS WHERE",
		"FIND MODELS WHERE COLOR = 'red'",
		"FIND MODELS WHERE DOMAIN 'legal'",
		"FIND MODELS WHERE DOMAIN = legal",
		"FIND MODELS WHERE TRAINED ON 'x'",
		"FIND MODELS WHERE OUTPERFORMS 'x' ON BENCHMARK 'y'",
		"FIND MODELS RANK BY MAGIC",
		"FIND MODELS RANK BY SIMILARITY TO MODEL 'm' USING VIBES",
		"FIND MODELS LIMIT 'ten'",
		"FIND MODELS LIMIT 0",
		"FIND MODELS EXTRA",
		"FIND MODELS WHERE NAME = 'unterminated",
		"FIND MODELS WHERE DOMAIN = 'x' AND",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Fatalf("parse(%q) should fail", c)
		}
	}
}

// Property: String() output re-parses to an equivalent query.
func TestPrintParseRoundTrip(t *testing.T) {
	f := func(domain, name string, limit uint8, useRank bool) bool {
		// Build a query with arbitrary string content.
		q := &Query{
			Preds: []Predicate{
				{Kind: PredField, Field: "domain", Op: "=", Value: domain},
				{Kind: PredField, Field: "name", Op: "like", Value: name},
				{Kind: PredTrainedOn, Dataset: "ds/v1", Versions: true},
			},
			Limit: int(limit%50) + 1,
		}
		if useRank {
			q.Rank = &Ranker{Kind: RankSimilarity, Model: "m-1", Space: "weights"}
		}
		parsed, err := Parse(q.String())
		if err != nil {
			return false
		}
		return parsed.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// fakeCatalog implements Catalog for executor tests.
type fakeCatalog struct {
	rows       []Row
	trainedOn  map[string]map[string]bool // dataset -> ids ("+v" suffix key for versions)
	outperform map[string]map[string]bool // model/bench -> ids
	simRank    []Hit
	textRank   []Hit
	benchRank  []Hit
}

func (f *fakeCatalog) Candidates() ([]Row, error) { return f.rows, nil }
func (f *fakeCatalog) TrainedOn(ds string, versions bool) (map[string]bool, error) {
	key := ds
	if versions {
		key += "+v"
	}
	return f.trainedOn[key], nil
}
func (f *fakeCatalog) Outperforms(m, b string) (map[string]bool, error) {
	return f.outperform[m+"/"+b], nil
}
func (f *fakeCatalog) SimilarityRank(m, space string) ([]Hit, error) { return f.simRank, nil }
func (f *fakeCatalog) TextRank(text string) ([]Hit, error)           { return f.textRank, nil }
func (f *fakeCatalog) BenchmarkRank(b string) ([]Hit, error)         { return f.benchRank, nil }

func testCatalog() *fakeCatalog {
	return &fakeCatalog{
		rows: []Row{
			{ID: "m1", Fields: map[string]string{"domain": "legal", "task": "classification", "name": "legal-base", "tag": "nlp summarization"}},
			{ID: "m2", Fields: map[string]string{"domain": "legal", "task": "classification", "name": "legal-ft"}},
			{ID: "m3", Fields: map[string]string{"domain": "medical", "task": "classification", "name": "med-base"}},
		},
		trainedOn: map[string]map[string]bool{
			"legal/v1":   {"m1": true},
			"legal/v1+v": {"m1": true, "m2": true},
		},
		outperform: map[string]map[string]bool{
			"m1/bench": {"m2": true},
		},
		simRank:   []Hit{{ID: "m2", Score: 0.9}, {ID: "m1", Score: 0.7}, {ID: "m3", Score: 0.1}},
		textRank:  []Hit{{ID: "m1", Score: 3}, {ID: "m2", Score: 2}},
		benchRank: []Hit{{ID: "m3", Score: 0.99}, {ID: "m2", Score: 0.8}, {ID: "m1", Score: 0.7}},
	}
}

func TestExecuteFieldFilter(t *testing.T) {
	res, err := Run("FIND MODELS WHERE DOMAIN = 'legal'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 2 || res.Hits[0].ID != "m1" || res.Hits[1].ID != "m2" {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestExecuteTagAndLike(t *testing.T) {
	res, err := Run("FIND MODELS WHERE TAG = 'summarization'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != "m1" {
		t.Fatalf("tag hits = %v", res.Hits)
	}
	res, err = Run("FIND MODELS WHERE NAME LIKE 'ft'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != "m2" {
		t.Fatalf("like hits = %v", res.Hits)
	}
}

func TestExecuteTrainedOn(t *testing.T) {
	res, err := Run("FIND MODELS WHERE TRAINED ON DATASET 'legal/v1'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != "m1" {
		t.Fatalf("hits = %v", res.Hits)
	}
	res, err = Run("FIND MODELS WHERE TRAINED ON VERSIONS OF DATASET 'legal/v1'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 2 {
		t.Fatalf("version hits = %v", res.Hits)
	}
}

func TestExecuteOutperforms(t *testing.T) {
	res, err := Run("FIND MODELS WHERE OUTPERFORMS MODEL 'm1' ON BENCHMARK 'bench'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != "m2" {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestExecuteConjunction(t *testing.T) {
	res, err := Run("FIND MODELS WHERE DOMAIN = 'legal' AND TRAINED ON VERSIONS OF DATASET 'legal/v1' AND NAME LIKE 'ft'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != "m2" {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestExecuteRankSimilarity(t *testing.T) {
	res, err := Run("FIND MODELS WHERE DOMAIN = 'legal' RANK BY SIMILARITY TO MODEL 'm1'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// Similarity order is m2, m1, m3; filter keeps legal only.
	if len(res.Hits) != 2 || res.Hits[0].ID != "m2" || res.Hits[1].ID != "m1" {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestExecuteRankTextWithUnrankedTail(t *testing.T) {
	// m3 is not in the text ranking; it must come last, not vanish.
	res, err := Run("FIND MODELS RANK BY TEXT 'legal'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 || res.Hits[2].ID != "m3" {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestExecuteLimit(t *testing.T) {
	res, err := Run("FIND MODELS RANK BY SCORE ON BENCHMARK 'b' LIMIT 2", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 2 || res.Hits[0].ID != "m3" {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestExecuteEmptyResult(t *testing.T) {
	res, err := Run("FIND MODELS WHERE DOMAIN = 'nonexistent'", testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("hits = %v", res.Hits)
	}
}

func TestQueryStringRendering(t *testing.T) {
	q, err := Parse("find models where domain = 'legal' rank by text 'x' limit 3")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"FIND MODELS", "WHERE DOMAIN = 'legal'", "RANK BY TEXT 'x'", "LIMIT 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered %q missing %q", s, want)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	q := "FIND MODELS WHERE DOMAIN = 'legal' AND TRAINED ON VERSIONS OF DATASET 'legal/v1' RANK BY SIMILARITY TO MODEL 'm-000001' USING BEHAVIOR LIMIT 10"
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecute(b *testing.B) {
	cat := testCatalog()
	for i := 0; i < 500; i++ {
		cat.rows = append(cat.rows, Row{ID: fmt.Sprintf("x%d", i),
			Fields: map[string]string{"domain": "legal"}})
	}
	q, err := Parse("FIND MODELS WHERE DOMAIN = 'legal' LIMIT 10")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(q, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExplainCoversPlanSteps(t *testing.T) {
	q, err := Parse(`FIND MODELS WHERE DOMAIN = 'legal'
		AND TRAINED ON VERSIONS OF DATASET 'legal/v1'
		AND OUTPERFORMS MODEL 'm-1' ON BENCHMARK 'b'
		RANK BY SIMILARITY TO MODEL 'm-2' USING WEIGHTS LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	plan := Explain(q)
	for _, want := range []string{
		"scan: registry records",
		`field DOMAIN = "legal"`,
		"dataset-lineage closure",
		"benchmark runner",
		"weights embedding space",
		"limit: 7",
	} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
	bare, _ := Parse("FIND MODELS")
	if !strings.Contains(Explain(bare), "no ranker") {
		t.Fatal("bare plan missing default order")
	}
	text, _ := Parse("FIND MODELS RANK BY TEXT 'x'")
	if !strings.Contains(Explain(text), "BM25") {
		t.Fatal("text plan missing BM25 step")
	}
	bench, _ := Parse("FIND MODELS RANK BY SCORE ON BENCHMARK 'b'")
	if !strings.Contains(Explain(bench), "score on benchmark") {
		t.Fatal("bench plan missing runner step")
	}
}

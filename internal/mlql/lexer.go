// Package mlql implements the Model Lake Query Language — the declarative
// query interface Figure 2 of the paper envisions data scientists using
// instead of APIs. It supports exactly the query shapes the paper's §6
// gives as examples:
//
//	FIND MODELS WHERE TRAINED ON DATASET 'us-supreme-court'
//	FIND MODELS WHERE OUTPERFORMS MODEL 'x' ON BENCHMARK 'y'
//	FIND MODELS WHERE DOMAIN = 'legal' RANK BY SIMILARITY TO MODEL 'm' LIMIT 10
//
// The package provides a lexer, a recursive-descent parser producing a small
// AST, and an executor that evaluates queries against any Catalog
// implementation (the lake facade implements Catalog).
package mlql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokWord
	tokString
	tokNumber
	tokEquals
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes a query. Keywords are case-insensitive words; strings are
// single-quoted with ” as the escape for a literal quote.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '=':
			out = append(out, token{kind: tokEquals, text: "=", pos: i})
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("mlql: unterminated string at position %d", start)
			}
			out = append(out, token{kind: tokString, text: sb.String(), pos: start})
		case unicode.IsDigit(c):
			start := i
			for i < len(input) && unicode.IsDigit(rune(input[i])) {
				i++
			}
			out = append(out, token{kind: tokNumber, text: input[start:i], pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) ||
				unicode.IsDigit(rune(input[i])) || input[i] == '_' || input[i] == '-') {
				i++
			}
			out = append(out, token{kind: tokWord, text: input[start:i], pos: start})
		default:
			return nil, fmt.Errorf("mlql: unexpected character %q at position %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(input)})
	return out, nil
}

package mlql

import (
	"fmt"
	"strings"
)

// PredKind distinguishes predicate families.
type PredKind int

// Predicate kinds.
const (
	PredField PredKind = iota // DOMAIN = 'x', NAME LIKE 'y', ...
	PredTrainedOn
	PredOutperforms
)

// Field names accepted by field predicates.
var validFields = map[string]bool{
	"domain": true, "task": true, "name": true, "arch": true,
	"tag": true, "base": true, "transform": true,
}

// Predicate is one WHERE conjunct.
type Predicate struct {
	Kind PredKind

	// PredField: Field Op Value where Op is "=" or "like".
	Field, Op, Value string

	// PredTrainedOn: Dataset, with Versions true for "VERSIONS OF".
	Dataset  string
	Versions bool

	// PredOutperforms: beat Model on Bench.
	Model, Bench string
}

// RankKind distinguishes ranking clauses.
type RankKind int

// Ranker kinds.
const (
	RankSimilarity RankKind = iota // RANK BY SIMILARITY TO MODEL 'm' [USING WEIGHTS|BEHAVIOR|CARDS]
	RankText                       // RANK BY TEXT 'free text'
	RankBenchmark                  // RANK BY SCORE ON BENCHMARK 'b'
)

// Ranker is the RANK BY clause.
type Ranker struct {
	Kind  RankKind
	Model string // similarity query model
	Space string // "weights", "behavior" or "cards" (similarity only)
	Text  string
	Bench string
}

// Query is a parsed MLQL query.
type Query struct {
	Preds []Predicate
	Rank  *Ranker
	Limit int // 0 = unlimited
}

// String renders the query back to (canonical) MLQL.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("FIND MODELS")
	for i, p := range q.Preds {
		if i == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		switch p.Kind {
		case PredField:
			op := "="
			if p.Op == "like" {
				op = "LIKE"
			}
			fmt.Fprintf(&sb, "%s %s '%s'", strings.ToUpper(p.Field), op, escape(p.Value))
		case PredTrainedOn:
			if p.Versions {
				fmt.Fprintf(&sb, "TRAINED ON VERSIONS OF DATASET '%s'", escape(p.Dataset))
			} else {
				fmt.Fprintf(&sb, "TRAINED ON DATASET '%s'", escape(p.Dataset))
			}
		case PredOutperforms:
			fmt.Fprintf(&sb, "OUTPERFORMS MODEL '%s' ON BENCHMARK '%s'", escape(p.Model), escape(p.Bench))
		}
	}
	if q.Rank != nil {
		switch q.Rank.Kind {
		case RankSimilarity:
			fmt.Fprintf(&sb, " RANK BY SIMILARITY TO MODEL '%s'", escape(q.Rank.Model))
			if q.Rank.Space != "" {
				fmt.Fprintf(&sb, " USING %s", strings.ToUpper(q.Rank.Space))
			}
		case RankText:
			fmt.Fprintf(&sb, " RANK BY TEXT '%s'", escape(q.Rank.Text))
		case RankBenchmark:
			fmt.Fprintf(&sb, " RANK BY SCORE ON BENCHMARK '%s'", escape(q.Rank.Bench))
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }

package mlql

import (
	"strings"
	"testing"
	"testing/quick"

	"modellake/internal/xrand"
)

// Property: Parse never panics and either errors or returns a query whose
// rendering re-parses, for arbitrary byte soup.
func TestParseNeverPanicsOnGarbage(t *testing.T) {
	f := func(input string) bool {
		q, err := Parse(input)
		if err != nil {
			return true
		}
		// A successful parse must round-trip through String().
		q2, err := Parse(q.String())
		return err == nil && q2.String() == q.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: token soup assembled from the language's own vocabulary never
// panics — this stresses the parser's state machine far harder than random
// bytes (which usually fail at the lexer).
func TestParseNeverPanicsOnKeywordSoup(t *testing.T) {
	vocab := []string{
		"FIND", "MODELS", "WHERE", "AND", "RANK", "BY", "LIMIT", "TRAINED",
		"ON", "VERSIONS", "OF", "DATASET", "OUTPERFORMS", "MODEL", "BENCHMARK",
		"SIMILARITY", "TO", "USING", "WEIGHTS", "BEHAVIOR", "CARDS", "TEXT",
		"SCORE", "DOMAIN", "TASK", "NAME", "LIKE", "=", "'x'", "10", "'it''s'",
	}
	rng := xrand.New(1)
	parsed := 0
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(12)
		parts := make([]string, 0, n+2)
		parts = append(parts, "FIND", "MODELS")
		for i := 0; i < n; i++ {
			parts = append(parts, vocab[rng.Intn(len(vocab))])
		}
		input := strings.Join(parts, " ")
		q, err := Parse(input)
		if err != nil {
			continue
		}
		parsed++
		if _, err := Parse(q.String()); err != nil {
			t.Fatalf("valid parse %q rendered to unparseable %q", input, q.String())
		}
	}
	if parsed == 0 {
		t.Fatal("keyword soup never produced a valid query; generator too weak")
	}
}

// FuzzParse is the native fuzz harness for the parser. The invariant is the
// same one TestParseNeverPanicsOnGarbage checks by random sampling: Parse
// must never panic, and any input it accepts must render to a string that
// re-parses to an identical rendering (a fixed point of Parse∘String).
// Additional seeds live in testdata/fuzz/FuzzParse. Run with
//
//	go test -run='^$' -fuzz=FuzzParse -fuzztime=30s ./internal/mlql
func FuzzParse(f *testing.F) {
	seeds := []string{
		"FIND MODELS",
		"FIND MODELS WHERE DOMAIN = 'legal'",
		"FIND MODELS WHERE TRAINED ON DATASET 'd'",
		"FIND MODELS WHERE TRAINED ON VERSIONS OF DATASET 'd' AND TASK LIKE 'sum'",
		"FIND MODELS WHERE OUTPERFORMS MODEL 'm' ON BENCHMARK 'b' LIMIT 5",
		"FIND MODELS RANK BY TEXT 'legal summarization' LIMIT 3",
		"FIND MODELS RANK BY SCORE ON BENCHMARK 'b'",
		"FIND MODELS RANK BY SIMILARITY TO MODEL 'm' USING CARDS",
		"FIND MODELS WHERE NAME = 'it''s' RANK BY SIMILARITY TO MODEL 'm' USING WEIGHTS LIMIT 10",
		"find models where domain = 'x' and arch like 'trans%'",
		"FIND MODELS LIMIT 007",
		"FIND MODELS WHERE",
		"FIND MODELS RANK BY",
		"FIND MODELS WHERE DOMAIN = 'unterminated",
		"FIND MODELS \x00 WHERE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", input, rendered, err)
		}
		if got := q2.String(); got != rendered {
			t.Fatalf("rendering is not a fixed point: %q -> %q -> %q", input, rendered, got)
		}
	})
}

// Property: the executor never panics on any parsed query against an empty
// catalog.
func TestExecuteEmptyCatalogNeverPanics(t *testing.T) {
	empty := &fakeCatalog{}
	queries := []string{
		"FIND MODELS",
		"FIND MODELS WHERE DOMAIN = 'x'",
		"FIND MODELS WHERE TRAINED ON DATASET 'd'",
		"FIND MODELS WHERE OUTPERFORMS MODEL 'm' ON BENCHMARK 'b'",
		"FIND MODELS RANK BY TEXT 'q' LIMIT 3",
		"FIND MODELS RANK BY SCORE ON BENCHMARK 'b'",
		"FIND MODELS RANK BY SIMILARITY TO MODEL 'm' USING CARDS",
	}
	for _, q := range queries {
		res, err := Run(q, empty)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if len(res.Hits) != 0 {
			t.Fatalf("%q returned hits from an empty catalog", q)
		}
	}
}

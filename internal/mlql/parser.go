package mlql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an MLQL query string.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after end of query", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("mlql: at position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// acceptWord consumes the next token if it is the given keyword
// (case-insensitive).
func (p *parser) acceptWord(kw string) bool {
	t := p.peek()
	if t.kind == tokWord && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectWord(kw string) error {
	if !p.acceptWord(kw) {
		return p.errorf("expected %s, got %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) expectString(what string) (string, error) {
	t := p.peek()
	if t.kind != tokString {
		return "", p.errorf("expected quoted %s, got %q", what, t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectWord("find"); err != nil {
		return nil, err
	}
	if err := p.expectWord("models"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.acceptWord("where") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, *pred)
			if !p.acceptWord("and") {
				break
			}
		}
	}
	if p.acceptWord("rank") {
		if err := p.expectWord("by"); err != nil {
			return nil, err
		}
		r, err := p.parseRanker()
		if err != nil {
			return nil, err
		}
		q.Rank = r
	}
	if p.acceptWord("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected a number after LIMIT, got %q", t.text)
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parsePredicate() (*Predicate, error) {
	switch {
	case p.acceptWord("trained"):
		if err := p.expectWord("on"); err != nil {
			return nil, err
		}
		versions := false
		if p.acceptWord("versions") {
			if err := p.expectWord("of"); err != nil {
				return nil, err
			}
			versions = true
		}
		if err := p.expectWord("dataset"); err != nil {
			return nil, err
		}
		ds, err := p.expectString("dataset id")
		if err != nil {
			return nil, err
		}
		return &Predicate{Kind: PredTrainedOn, Dataset: ds, Versions: versions}, nil

	case p.acceptWord("outperforms"):
		if err := p.expectWord("model"); err != nil {
			return nil, err
		}
		m, err := p.expectString("model id")
		if err != nil {
			return nil, err
		}
		if err := p.expectWord("on"); err != nil {
			return nil, err
		}
		if err := p.expectWord("benchmark"); err != nil {
			return nil, err
		}
		b, err := p.expectString("benchmark id")
		if err != nil {
			return nil, err
		}
		return &Predicate{Kind: PredOutperforms, Model: m, Bench: b}, nil

	default:
		t := p.peek()
		if t.kind != tokWord {
			return nil, p.errorf("expected a predicate, got %q", t.text)
		}
		field := strings.ToLower(t.text)
		if !validFields[field] {
			return nil, p.errorf("unknown field %q (valid: domain, task, name, arch, tag, base, transform)", t.text)
		}
		p.next()
		op := ""
		switch {
		case p.peek().kind == tokEquals:
			p.next()
			op = "="
		case p.acceptWord("like"):
			op = "like"
		default:
			return nil, p.errorf("expected = or LIKE after %s, got %q", strings.ToUpper(field), p.peek().text)
		}
		v, err := p.expectString("value")
		if err != nil {
			return nil, err
		}
		return &Predicate{Kind: PredField, Field: field, Op: op, Value: v}, nil
	}
}

func (p *parser) parseRanker() (*Ranker, error) {
	switch {
	case p.acceptWord("similarity"):
		if err := p.expectWord("to"); err != nil {
			return nil, err
		}
		if err := p.expectWord("model"); err != nil {
			return nil, err
		}
		m, err := p.expectString("model id")
		if err != nil {
			return nil, err
		}
		r := &Ranker{Kind: RankSimilarity, Model: m}
		if p.acceptWord("using") {
			t := p.peek()
			if t.kind != tokWord {
				return nil, p.errorf("expected an embedding space after USING")
			}
			space := strings.ToLower(t.text)
			if space != "weights" && space != "behavior" && space != "cards" {
				return nil, p.errorf("unknown embedding space %q (weights, behavior, cards)", t.text)
			}
			p.next()
			r.Space = space
		}
		return r, nil

	case p.acceptWord("text"):
		s, err := p.expectString("query text")
		if err != nil {
			return nil, err
		}
		return &Ranker{Kind: RankText, Text: s}, nil

	case p.acceptWord("score"):
		if err := p.expectWord("on"); err != nil {
			return nil, err
		}
		if err := p.expectWord("benchmark"); err != nil {
			return nil, err
		}
		b, err := p.expectString("benchmark id")
		if err != nil {
			return nil, err
		}
		return &Ranker{Kind: RankBenchmark, Bench: b}, nil
	}
	return nil, p.errorf("expected SIMILARITY, TEXT, or SCORE after RANK BY, got %q", p.peek().text)
}

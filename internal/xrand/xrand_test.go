package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestChildStability(t *testing.T) {
	parent := New(7)
	c1 := parent.Child("models")
	// Consume some of the parent stream; children must be unaffected.
	for i := 0; i < 10; i++ {
		parent.Uint64()
	}
	c2 := parent.Child("models")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("child stream not stable at step %d", i)
		}
	}
}

func TestChildIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Child("a")
	b := parent.Child("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children 'a' and 'b' produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestWeighted(t *testing.T) {
	r := New(23)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.Weighted(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("weight %d: observed frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero total weight")
		}
	}()
	New(1).Weighted([]float64{0, 0})
}

func TestPick(t *testing.T) {
	r := New(29)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never returned some elements: %v", seen)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}

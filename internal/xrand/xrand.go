// Package xrand provides deterministic, splittable pseudo-random number
// streams used throughout the model lake. Every stochastic component in the
// repository (data generation, weight initialization, training shuffles,
// sampling) draws from an explicit *xrand.RNG so that experiments are exactly
// reproducible from a single seed.
//
// The generator is xoshiro256**, seeded through SplitMix64 as recommended by
// its authors. Streams may be split hierarchically with Child, which derives
// an independent stream from a parent seed and a string label; this makes it
// easy to give each model, dataset, or trial its own stable stream without
// coordinating global state.
package xrand

import (
	"hash/fnv"
	"math"
)

// RNG is a deterministic random number generator. It is not safe for
// concurrent use; derive per-goroutine streams with Child instead of sharing.
type RNG struct {
	s    [4]uint64
	init [4]uint64 // seed-derived state at creation, used by Child
}

// splitmix64 advances the SplitMix64 state and returns the next value. It is
// used only for seeding xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.init = r.s
	return r
}

// Child derives an independent generator from this generator's seed lineage
// and a label. Calling Child with the same label always yields the same
// stream, regardless of how much of the parent stream has been consumed.
func (r *RNG) Child(label string) *RNG {
	h := fnv.New64a()
	// Hash the label together with the parent's initial state so distinct
	// parents produce distinct children for the same label.
	var buf [32]byte
	for i, s := range r.init {
		buf[i*8+0] = byte(s)
		buf[i*8+1] = byte(s >> 8)
		buf[i*8+2] = byte(s >> 16)
		buf[i*8+3] = byte(s >> 24)
		buf[i*8+4] = byte(s >> 32)
		buf[i*8+5] = byte(s >> 40)
		buf[i*8+6] = byte(s >> 48)
		buf[i*8+7] = byte(s >> 56)
	}
	h.Write(buf[:])
	h.Write([]byte(label))
	return New(h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on an empty slice.
func Pick[T any](r *RNG, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Weighted returns an index sampled proportionally to the non-negative
// weights. It panics if weights is empty or sums to zero.
func (r *RNG) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("xrand: Weighted requires positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

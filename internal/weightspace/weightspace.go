// Package weightspace implements §5's weight-space modeling: a meta-model (a
// small MLP) trained to read other models' weights — here, to predict a
// model's training domain and the transformation that produced it from θ
// alone. It is the engine behind docgen's ability to fill in missing
// "domain" fields, and experiment E8's subject.
//
// The package also provides the cross-task linearity check of Zhou et al.:
// interpolating the weights of a base and its fine-tuned child should yield
// models whose behaviour interpolates smoothly (high linear-connectivity
// score), while interpolating unrelated models should not.
package weightspace

import (
	"fmt"
	"sort"

	"modellake/internal/data"
	"modellake/internal/embedding"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Probe is a trained weight-space classifier for one label family (e.g.
// "domain" or "transform").
type Probe struct {
	classes []string
	net     *nn.MLP
	emb     *embedding.WeightEmbedder
}

// ProbeConfig configures probe training.
type ProbeConfig struct {
	Hidden int
	Epochs int
	LR     float64
	Seed   uint64
	// Embedder embeds the model weights; nil selects the standard
	// deterministic weight embedder.
	Embedder *embedding.WeightEmbedder
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Embedder == nil {
		c.Embedder = embedding.NewWeightEmbedder(32, 4, 12345)
	}
	return c
}

// TrainProbe fits a weight-space classifier on (model, label) pairs. Labels
// are arbitrary strings; the probe learns to predict them from weight
// embeddings. It returns the probe and its training accuracy.
func TrainProbe(handles []*model.Handle, labels []string, cfg ProbeConfig) (*Probe, float64, error) {
	if len(handles) == 0 || len(handles) != len(labels) {
		return nil, 0, fmt.Errorf("weightspace: need equal nonzero handles (%d) and labels (%d)",
			len(handles), len(labels))
	}
	cfg = cfg.withDefaults()

	// Stable class indexing.
	classSet := map[string]bool{}
	for _, l := range labels {
		classSet[l] = true
	}
	classes := make([]string, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	if len(classes) < 2 {
		return nil, 0, fmt.Errorf("weightspace: need at least 2 classes, got %d", len(classes))
	}
	classIdx := map[string]int{}
	for i, c := range classes {
		classIdx[c] = i
	}

	dim := cfg.Embedder.Dim()
	ds := &data.Dataset{
		ID:         "weightspace/train",
		X:          tensor.NewMatrix(len(handles), dim),
		Y:          make([]int, len(handles)),
		NumClasses: len(classes),
	}
	for i, h := range handles {
		v, err := cfg.Embedder.Embed(h)
		if err != nil {
			return nil, 0, fmt.Errorf("weightspace: embed %s: %w", h.ID(), err)
		}
		copy(ds.X.Row(i), v)
		ds.Y[i] = classIdx[labels[i]]
	}
	net := nn.NewMLP([]int{dim, cfg.Hidden, len(classes)}, nn.ReLU, xrand.New(cfg.Seed))
	tc := nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: 8, LR: cfg.LR, Seed: cfg.Seed}
	if _, err := nn.Train(net, ds, tc); err != nil {
		return nil, 0, err
	}
	p := &Probe{classes: classes, net: net, emb: cfg.Embedder}
	return p, net.Accuracy(ds), nil
}

// Classes returns the label vocabulary in index order.
func (p *Probe) Classes() []string { return append([]string(nil), p.classes...) }

// Predict returns the predicted label for a model.
func (p *Probe) Predict(h *model.Handle) (string, error) {
	v, err := p.emb.Embed(h)
	if err != nil {
		return "", fmt.Errorf("weightspace: embed %s: %w", h.ID(), err)
	}
	return p.classes[p.net.Predict(v)], nil
}

// Accuracy evaluates the probe on labeled handles.
func (p *Probe) Accuracy(handles []*model.Handle, labels []string) (float64, error) {
	if len(handles) == 0 || len(handles) != len(labels) {
		return 0, fmt.Errorf("weightspace: need equal nonzero handles and labels")
	}
	correct := 0
	for i, h := range handles {
		got, err := p.Predict(h)
		if err != nil {
			return 0, err
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(handles)), nil
}

// MajorityBaseline returns the accuracy of always predicting the most common
// label — the floor every probe must beat.
func MajorityBaseline(labels []string) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := map[string]int{}
	best := 0
	for _, l := range labels {
		counts[l]++
		if counts[l] > best {
			best = counts[l]
		}
	}
	return float64(best) / float64(len(labels))
}

// LinearConnectivity measures Zhou et al.'s cross-task linearity between two
// same-architecture models: it interpolates their weights at the given
// resolution and reports the mean agreement between the interpolated model's
// predictions and the prediction interpolation of the endpoints, evaluated
// on eval. 1.0 means behaviour is linear along the weight path (typical for
// a base and its fine-tune); low values indicate unrelated models separated
// by loss barriers.
func LinearConnectivity(a, b *nn.MLP, eval *data.Dataset, steps int) (float64, error) {
	if !a.SameArchitecture(b) {
		return 0, fmt.Errorf("weightspace: architecture mismatch %s vs %s", a.ArchString(), b.ArchString())
	}
	if eval.Len() == 0 {
		return 0, fmt.Errorf("weightspace: empty eval dataset")
	}
	if steps < 1 {
		steps = 5
	}
	total, count := 0.0, 0
	for s := 1; s < steps; s++ {
		alpha := float64(s) / float64(steps)
		mid := a.Clone()
		for l := range mid.W {
			mid.W[l].Scale(1 - alpha)
			mid.W[l].AddScaled(alpha, b.W[l])
			mid.B[l].Scale(1 - alpha)
			mid.B[l].AddScaled(alpha, b.B[l])
		}
		for i := 0; i < eval.Len(); i++ {
			x, _ := eval.Example(i)
			pa := a.Probs(x)
			pb := b.Probs(x)
			blend := pa.Clone()
			blend.Scale(1 - alpha)
			blend.AddScaled(alpha, pb)
			if mid.Predict(x) == blend.ArgMax() {
				total++
			}
			count++
		}
	}
	return total / float64(count), nil
}

package weightspace

import (
	"fmt"
	"testing"

	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/xrand"
)

func population(t *testing.T, seed uint64, bases, children int) *lakegen.Population {
	t.Helper()
	s := lakegen.DefaultSpec(seed)
	s.NumBases = bases
	s.ChildrenPerBase = children
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range pop.Members {
		m.Model.ID = fmt.Sprintf("m%02d", i)
	}
	return pop
}

func familyLabels(pop *lakegen.Population) ([]*model.Handle, []string) {
	var hs []*model.Handle
	var labels []string
	for _, m := range pop.Members {
		hs = append(hs, model.NewHandle(m.Model))
		labels = append(labels, fmt.Sprintf("family-%d", m.Truth.Family))
	}
	return hs, labels
}

func TestProbePredictsFamilyFromWeights(t *testing.T) {
	// The docgen scenario: the probe trains on the lake's *documented*
	// models and labels the undocumented rest of the same lake. (Cross-lake
	// transfer from raw weights is impossible in principle: independently
	// initialized networks solving the same task occupy permutation-
	// symmetric weight regions.)
	pop := population(t, 101, 4, 8)
	hs, labels := familyLabels(pop)
	var hTrain, hTest []*model.Handle
	var lTrain, lTest []string
	for i := range hs {
		if i%3 == 0 { // every third member is "undocumented"
			hTest = append(hTest, hs[i])
			lTest = append(lTest, labels[i])
		} else {
			hTrain = append(hTrain, hs[i])
			lTrain = append(lTrain, labels[i])
		}
	}

	probe, trainAcc, err := TrainProbe(hTrain, lTrain, ProbeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trainAcc < 0.9 {
		t.Fatalf("train accuracy = %v, want >= 0.9", trainAcc)
	}
	acc, err := probe.Accuracy(hTest, lTest)
	if err != nil {
		t.Fatal(err)
	}
	base := MajorityBaseline(lTest)
	if acc <= base+0.2 {
		t.Fatalf("probe accuracy %v not clearly above majority baseline %v", acc, base)
	}
}

func TestProbePredictsTransform(t *testing.T) {
	pop := population(t, 103, 4, 8)
	var hs []*model.Handle
	var labels []string
	for _, m := range pop.Members {
		hs = append(hs, model.NewHandle(m.Model))
		labels = append(labels, m.Truth.Transform)
	}
	probe, trainAcc, err := TrainProbe(hs, labels, ProbeConfig{Seed: 2, Epochs: 100})
	if err != nil {
		t.Fatal(err)
	}
	base := MajorityBaseline(labels)
	if trainAcc <= base {
		t.Fatalf("transform probe train accuracy %v <= baseline %v", trainAcc, base)
	}
	_ = probe
}

func TestProbeValidation(t *testing.T) {
	pop := population(t, 104, 2, 1)
	hs, labels := familyLabels(pop)
	if _, _, err := TrainProbe(nil, nil, ProbeConfig{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := TrainProbe(hs, labels[:1], ProbeConfig{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	same := make([]string, len(hs))
	for i := range same {
		same[i] = "only"
	}
	if _, _, err := TrainProbe(hs, same, ProbeConfig{}); err == nil {
		t.Fatal("single-class accepted")
	}
	// Probing a closed-weights model fails cleanly.
	probe, _, err := TrainProbe(hs, labels, ProbeConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Predict(model.WithViews(pop.Members[0].Model, model.ViewExtrinsic)); err == nil {
		t.Fatal("closed-weights model probed")
	}
}

func TestMajorityBaseline(t *testing.T) {
	if got := MajorityBaseline([]string{"a", "a", "b"}); got != 2.0/3 {
		t.Fatalf("baseline = %v", got)
	}
	if MajorityBaseline(nil) != 0 {
		t.Fatal("empty baseline should be 0")
	}
}

func TestLinearConnectivityParentChildVsUnrelated(t *testing.T) {
	pop := population(t, 105, 3, 5)
	var edge lakegen.Edge
	found := false
	for _, e := range pop.Edges {
		if e.Transform == model.TransformFinetune {
			edge = e
			found = true
			break
		}
	}
	if !found {
		t.Skip("no finetune edge in this population")
	}
	parent := pop.Members[edge.Parent]
	child := pop.Members[edge.Child]
	eval := pop.Datasets[parent.Truth.DatasetID]

	related, err := LinearConnectivity(parent.Model.Net, child.Model.Net, eval, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Unrelated: a base from a different family.
	var other *lakegen.Member
	for _, m := range pop.Members {
		if m.Truth.Family != parent.Truth.Family && m.Truth.Depth == 0 {
			other = m
			break
		}
	}
	unrelated, err := LinearConnectivity(parent.Model.Net, other.Model.Net, eval, 5)
	if err != nil {
		t.Fatal(err)
	}
	if related < 0.8 {
		t.Fatalf("parent-child connectivity = %v, want >= 0.8", related)
	}
	if related <= unrelated {
		t.Fatalf("connectivity ordering violated: related %v <= unrelated %v", related, unrelated)
	}
}

func TestLinearConnectivityValidation(t *testing.T) {
	a := nn.NewMLP([]int{4, 6, 2}, nn.ReLU, xrand.New(1))
	b := nn.NewMLP([]int{4, 7, 2}, nn.ReLU, xrand.New(2))
	pop := population(t, 106, 2, 0)
	eval := pop.Datasets[pop.Members[0].Truth.DatasetID]
	if _, err := LinearConnectivity(a, b, eval, 5); err == nil {
		t.Fatal("arch mismatch accepted")
	}
}

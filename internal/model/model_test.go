package model

import (
	"errors"
	"testing"

	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func testModel() *Model {
	net := nn.NewMLP([]int{4, 6, 3}, nn.ReLU, xrand.New(1))
	return &Model{
		ID:   "m-1",
		Name: "test-model",
		Net:  net,
		Hist: &History{
			DatasetID:      "legal/v1",
			DatasetDomain:  "legal",
			Transformation: TransformPretrain,
			Optimizer:      "sgd",
			Epochs:         30,
		},
	}
}

func TestFullHandleExposesAllViews(t *testing.T) {
	h := NewHandle(testModel())
	if !h.HasView(ViewExtrinsic) || !h.HasView(ViewIntrinsic) || !h.HasView(ViewHistory) {
		t.Fatal("full handle should expose all viewpoints")
	}
	if _, err := h.Probs(tensor.Vector{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Weights(); err != nil {
		t.Fatal(err)
	}
	hist, err := h.History()
	if err != nil || hist.DatasetDomain != "legal" {
		t.Fatalf("history: %+v, %v", hist, err)
	}
	arch, err := h.Arch()
	if err != nil || arch != "mlp:4-6-3:relu" {
		t.Fatalf("arch = %q, %v", arch, err)
	}
	in, _ := h.InputDim()
	out, _ := h.OutputDim()
	if in != 4 || out != 3 {
		t.Fatalf("dims %d/%d", in, out)
	}
}

func TestRestrictedHandleWithholdsViews(t *testing.T) {
	m := testModel()
	h := WithViews(m, ViewExtrinsic)
	if _, err := h.Probs(tensor.Vector{1, 2, 3, 4}); err != nil {
		t.Fatalf("extrinsic access should work: %v", err)
	}
	if _, err := h.Weights(); !errors.Is(err, ErrNoIntrinsics) {
		t.Fatalf("intrinsics should be withheld: %v", err)
	}
	if _, err := h.Network(); !errors.Is(err, ErrNoIntrinsics) {
		t.Fatalf("network should be withheld: %v", err)
	}
	if _, err := h.Arch(); !errors.Is(err, ErrNoIntrinsics) {
		t.Fatalf("arch should be withheld: %v", err)
	}
	if _, err := h.History(); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("history should be withheld: %v", err)
	}
}

func TestHandleWithMissingComponents(t *testing.T) {
	m := testModel()
	m.Hist = nil
	h := NewHandle(m)
	if h.HasView(ViewHistory) {
		t.Fatal("handle claims history the model lacks")
	}
	if _, err := h.History(); !errors.Is(err, ErrNoHistory) {
		t.Fatalf("expected ErrNoHistory, got %v", err)
	}

	m2 := testModel()
	m2.Net = nil
	h2 := NewHandle(m2)
	if h2.HasView(ViewIntrinsic) || h2.HasView(ViewExtrinsic) {
		t.Fatal("handle claims views a weightless model lacks")
	}
	if _, err := h2.Probs(tensor.Vector{1, 2, 3, 4}); !errors.Is(err, ErrNoExtrinsics) {
		t.Fatalf("expected ErrNoExtrinsics, got %v", err)
	}
}

func TestProbsDimensionCheck(t *testing.T) {
	h := NewHandle(testModel())
	if _, err := h.Probs(tensor.Vector{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := h.Predict(tensor.Vector{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestPredictAgreesWithProbs(t *testing.T) {
	h := NewHandle(testModel())
	x := tensor.Vector{0.5, -1, 2, 0}
	p, err := h.Probs(x)
	if err != nil {
		t.Fatal(err)
	}
	y, err := h.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if y != p.ArgMax() {
		t.Fatalf("Predict %d != argmax of Probs %d", y, p.ArgMax())
	}
}

func TestIDAndName(t *testing.T) {
	h := NewHandle(testModel())
	if h.ID() != "m-1" || h.Name() != "test-model" {
		t.Fatalf("identity lost: %s %s", h.ID(), h.Name())
	}
}

// Package model defines the lake's representation of an AI model as the
// five-tuple the Model Lakes paper formalizes in §2:
//
//	M = (D, A, f*, θ, p_θ)
//
// History carries (D, A) — the training data and algorithm, which may be
// absent or wrong in a real lake. The network itself carries the intrinsics
// (f*, θ). The extrinsic behaviour p_θ is exposed as the Probs/Predict
// methods, which observe the model through inputs and outputs only.
//
// The three viewpoint interfaces (HistoryView, IntrinsicView, ExtrinsicView)
// let each lake task declare exactly which viewpoint it consumes, mirroring
// the paper's observation that analysis methods must cope with models whose
// history or intrinsics are unavailable. WithViews produces a restricted
// handle for the viewpoint-ablation experiments.
package model

import (
	"errors"
	"fmt"

	"modellake/internal/nn"
	"modellake/internal/tensor"
)

// Transformation names the ways a model can be derived from another — the
// edge labels of the paper's Model Graph.
const (
	TransformPretrain   = "pretrain"
	TransformFinetune   = "finetune"
	TransformLoRA       = "lora"
	TransformEdit       = "edit"
	TransformStitch     = "stitch"
	TransformPreference = "preference"
)

// History is the (D, A) component: what the model was trained on and how.
// In a model lake this is documentation-derived and may be missing or false;
// the Truthful flag is used only by benchmark ground truth, never by task
// algorithms.
type History struct {
	DatasetID      string   `json:"dataset_id"`
	DatasetDomain  string   `json:"dataset_domain"`
	Transformation string   `json:"transformation"` // one of the Transform* constants
	Optimizer      string   `json:"optimizer"`
	Epochs         int      `json:"epochs"`
	LearningRate   float64  `json:"learning_rate"`
	BaseModelIDs   []string `json:"base_model_ids,omitempty"`
	Notes          string   `json:"notes,omitempty"`
}

// Model is a lake resident: identity plus the five-tuple components that are
// available for it.
type Model struct {
	ID   string
	Name string

	// Net holds the intrinsics (f*, θ). Nil when intrinsics are withheld
	// (e.g. a closed-weights model reachable only through its API).
	Net *nn.MLP

	// Hist holds the recorded history (D, A). Nil when undocumented.
	Hist *History
}

// Viewpoint errors.
var (
	ErrNoIntrinsics = errors.New("model: intrinsics unavailable")
	ErrNoHistory    = errors.New("model: history unavailable")
	ErrNoExtrinsics = errors.New("model: extrinsics unavailable")
)

// ExtrinsicView is the behaviour-only viewpoint p_θ: the model observed
// through inputs and outputs, with no access to weights or history.
type ExtrinsicView interface {
	InputDim() (int, error)
	OutputDim() (int, error)
	// Probs returns p_θ(y|x), the observable output distribution.
	Probs(x tensor.Vector) (tensor.Vector, error)
	// Predict returns the argmax class.
	Predict(x tensor.Vector) (int, error)
}

// IntrinsicView is the (f*, θ) viewpoint: architecture and raw parameters.
type IntrinsicView interface {
	// Arch returns the architecture descriptor f*.
	Arch() (string, error)
	// Weights returns the flattened parameter vector θ.
	Weights() (tensor.Vector, error)
	// Network returns the full network, for structure-aware analyses.
	Network() (*nn.MLP, error)
}

// HistoryView is the (D, A) viewpoint.
type HistoryView interface {
	History() (*History, error)
}

// Views is a bitmask of available viewpoints.
type Views uint8

// Viewpoint flags.
const (
	ViewExtrinsic Views = 1 << iota
	ViewIntrinsic
	ViewHistory
	ViewAll = ViewExtrinsic | ViewIntrinsic | ViewHistory
)

// Handle is a (possibly restricted) window onto a model. It implements all
// three viewpoint interfaces but returns the corresponding sentinel error
// for any viewpoint that has been withheld.
type Handle struct {
	m     *Model
	views Views
}

// NewHandle returns an unrestricted handle (all viewpoints the model
// actually has).
func NewHandle(m *Model) *Handle { return &Handle{m: m, views: ViewAll} }

// WithViews returns a handle restricted to the given viewpoints. It is the
// mechanism behind the viewpoint-ablation experiment (F1).
func WithViews(m *Model, v Views) *Handle { return &Handle{m: m, views: v} }

// ID returns the model's lake identifier.
func (h *Handle) ID() string { return h.m.ID }

// Name returns the model's human name.
func (h *Handle) Name() string { return h.m.Name }

// HasView reports whether the handle exposes viewpoint v (and the underlying
// model actually has it).
func (h *Handle) HasView(v Views) bool {
	if h.views&v == 0 {
		return false
	}
	switch v {
	case ViewIntrinsic, ViewExtrinsic:
		return h.m.Net != nil
	case ViewHistory:
		return h.m.Hist != nil
	}
	return false
}

// InputDim implements ExtrinsicView.
func (h *Handle) InputDim() (int, error) {
	if !h.HasView(ViewExtrinsic) {
		return 0, ErrNoExtrinsics
	}
	return h.m.Net.InputDim(), nil
}

// OutputDim implements ExtrinsicView.
func (h *Handle) OutputDim() (int, error) {
	if !h.HasView(ViewExtrinsic) {
		return 0, ErrNoExtrinsics
	}
	return h.m.Net.OutputDim(), nil
}

// Probs implements ExtrinsicView.
func (h *Handle) Probs(x tensor.Vector) (tensor.Vector, error) {
	if !h.HasView(ViewExtrinsic) {
		return nil, ErrNoExtrinsics
	}
	if len(x) != h.m.Net.InputDim() {
		return nil, fmt.Errorf("model: input dim %d != expected %d", len(x), h.m.Net.InputDim())
	}
	return h.m.Net.Probs(x), nil
}

// Predict implements ExtrinsicView.
func (h *Handle) Predict(x tensor.Vector) (int, error) {
	if !h.HasView(ViewExtrinsic) {
		return 0, ErrNoExtrinsics
	}
	if len(x) != h.m.Net.InputDim() {
		return 0, fmt.Errorf("model: input dim %d != expected %d", len(x), h.m.Net.InputDim())
	}
	return h.m.Net.Predict(x), nil
}

// Arch implements IntrinsicView.
func (h *Handle) Arch() (string, error) {
	if !h.HasView(ViewIntrinsic) {
		return "", ErrNoIntrinsics
	}
	return h.m.Net.ArchString(), nil
}

// Weights implements IntrinsicView.
func (h *Handle) Weights() (tensor.Vector, error) {
	if !h.HasView(ViewIntrinsic) {
		return nil, ErrNoIntrinsics
	}
	return h.m.Net.FlattenWeights(), nil
}

// Network implements IntrinsicView.
func (h *Handle) Network() (*nn.MLP, error) {
	if !h.HasView(ViewIntrinsic) {
		return nil, ErrNoIntrinsics
	}
	return h.m.Net, nil
}

// History implements HistoryView.
func (h *Handle) History() (*History, error) {
	if !h.HasView(ViewHistory) {
		return nil, ErrNoHistory
	}
	return h.m.Hist, nil
}

// Interface conformance checks.
var (
	_ ExtrinsicView = (*Handle)(nil)
	_ IntrinsicView = (*Handle)(nil)
	_ HistoryView   = (*Handle)(nil)
)

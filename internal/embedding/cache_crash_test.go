package embedding

import (
	"fmt"
	"testing"

	"modellake/internal/fault"
	"modellake/internal/model"
)

// Crash sweep for the embedding cache, in the same style as the kvstore,
// blob, and lake sweeps: enumerate every IO operation the cache-filling
// workload performs, replay the workload failing each one in turn (with a
// torn write), and assert the invariant the ISSUE demands — a torn or lost
// cache write may cost a recomputation but can never corrupt an embedding,
// because entries are checksum-verified on load and recomputed on any
// defect.

// cacheWorkload embeds nModels models through a disk cache rooted at dir
// with the given injected filesystem. Injected Put failures are invisible
// to callers by design (the cache is an accelerator), so the workload
// always "succeeds"; what matters is the state left on disk.
func cacheWorkload(dir string, fsys *fault.FS, nModels int) {
	cache := NewVectorCache(dir, "sweep", fsys)
	emb := NewCached(NewWeightEmbedder(8, 2, 9), cache)
	for i := 0; i < nModels; i++ {
		_, _ = emb.Embed(model.NewHandle(testModel(uint64(100 + i))))
	}
}

func TestEmbedCacheCrashSweep(t *testing.T) {
	const nModels = 3

	// Reference vectors from a cache-free embedder: the ground truth every
	// post-fault embed must reproduce exactly.
	ref := NewWeightEmbedder(8, 2, 9)
	want := make(map[int][]float64)
	for i := 0; i < nModels; i++ {
		v, err := ref.Embed(model.NewHandle(testModel(uint64(100 + i))))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}

	rec := &fault.Recorder{}
	cacheWorkload(t.TempDir(), fault.New(rec), nModels)
	n := len(rec.Ops())
	if n < nModels*4 {
		t.Fatalf("cache workload exercised only %d IO ops; sweep too small", n)
	}

	for op := 1; op <= n; op++ {
		t.Run(fmt.Sprintf("op-%02d", op), func(t *testing.T) {
			dir := t.TempDir()
			cacheWorkload(dir, fault.New(&fault.Script{FailAt: op, Torn: 7}), nModels)

			// Reopen the (possibly torn) cache cleanly. Every embed must
			// return the exact reference vector: hits must be verified
			// bytes, defects must fall back to recomputation.
			clean := NewCached(NewWeightEmbedder(8, 2, 9), NewVectorCache(dir, "sweep", nil))
			for i := 0; i < nModels; i++ {
				h := model.NewHandle(testModel(uint64(100 + i)))
				got, err := clean.Embed(h)
				if err != nil {
					t.Fatalf("model %d: embed after fault: %v", i, err)
				}
				for j := range want[i] {
					if got[j] != want[i][j] {
						t.Fatalf("model %d: torn cache corrupted component %d: %v != %v",
							i, j, got[j], want[i][j])
					}
				}
			}
		})
	}
}

// TestEmbedCacheSweepWithStickyDisk: a disk that breaks and stays broken
// degrades the cache to memory-only but never fails or corrupts embedding.
func TestEmbedCacheSweepWithStickyDisk(t *testing.T) {
	dir := t.TempDir()
	fsys := fault.New(&fault.Script{FailAt: 1, Sticky: true})
	cache := NewVectorCache(dir, "sweep", fsys)
	emb := NewCached(NewWeightEmbedder(8, 2, 9), cache)
	ref := NewWeightEmbedder(8, 2, 9)
	for i := 0; i < 3; i++ {
		h := model.NewHandle(testModel(uint64(200 + i)))
		got, err := emb.Embed(h)
		if err != nil {
			t.Fatalf("embed with dead cache disk failed: %v", err)
		}
		want, err := ref.Embed(h)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("dead-disk embed differs at %d", j)
			}
		}
		// And the in-memory layer still serves hits.
		if again, err := emb.Embed(h); err != nil || again[0] != want[0] {
			t.Fatalf("memory-layer hit broken: %v %v", again, err)
		}
	}
}

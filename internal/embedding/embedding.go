// Package embedding turns models and documents into fixed-dimension vectors,
// the representation the lake's indexer (paper §5) searches over. Three
// embedders cover the paper's three viewpoints:
//
//   - WeightEmbedder (intrinsic): per-layer weight statistics concatenated
//     with a Johnson–Lindenstrauss random-projection sketch of θ. Models
//     with different architectures embed into the same space because the
//     sketch folds arbitrary-length parameter vectors.
//
//   - BehaviorEmbedder (extrinsic): the model's output distributions on a
//     shared probe set — p_θ observed through the API only, usable even for
//     closed-weights models.
//
//   - CardEmbedder (documentation): a hashed TF-IDF-style bag of words over
//     the model card text.
//
// HybridEmbedder concatenates any of the above with weights, the "hybrid
// metadata + model embeddings" approach §5 advocates.
package embedding

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"modellake/internal/data"
	"modellake/internal/model"
	"modellake/internal/tensor"
)

// ErrViewUnavailable reports that a model does not expose the viewpoint an
// embedder requires.
var ErrViewUnavailable = errors.New("embedding: required viewpoint unavailable")

// Embedder maps a model handle to a fixed-dimension vector.
type Embedder interface {
	// Name identifies the embedder (used in experiment tables).
	Name() string
	// Dim is the embedding dimensionality.
	Dim() int
	// Embed computes the vector for the model. Implementations must return
	// an error wrapping ErrViewUnavailable when the needed viewpoint is
	// withheld.
	Embed(h *model.Handle) (tensor.Vector, error)
}

// statsPerLayer is the number of summary statistics emitted per layer slot.
const statsPerLayer = 5

// WeightEmbedder embeds the intrinsic viewpoint (f*, θ).
type WeightEmbedder struct {
	// SketchDim is the dimension of the random-projection sketch.
	SketchDim int
	// LayerSlots is the number of layers summarized; deeper models fold
	// extra layers into the last slot, shallower models zero-pad.
	LayerSlots int
	proj       *tensor.RandomProjection
}

// NewWeightEmbedder constructs the embedder with a deterministic projection
// derived from seed, so embeddings are comparable across processes.
func NewWeightEmbedder(sketchDim, layerSlots int, seed uint64) *WeightEmbedder {
	if sketchDim <= 0 {
		sketchDim = 32
	}
	if layerSlots <= 0 {
		layerSlots = 4
	}
	return &WeightEmbedder{
		SketchDim:  sketchDim,
		LayerSlots: layerSlots,
		proj:       tensor.NewRandomProjection(4096, sketchDim, seed),
	}
}

// Name implements Embedder.
func (e *WeightEmbedder) Name() string { return "weight" }

// Dim implements Embedder.
func (e *WeightEmbedder) Dim() int { return e.LayerSlots*statsPerLayer + e.SketchDim }

// Embed implements Embedder.
func (e *WeightEmbedder) Embed(h *model.Handle) (tensor.Vector, error) {
	net, err := h.Network()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrViewUnavailable, err)
	}
	out := make(tensor.Vector, 0, e.Dim())
	for slot := 0; slot < e.LayerSlots; slot++ {
		var layerData []float64
		if slot == e.LayerSlots-1 {
			// Fold this and all deeper layers into the final slot so models
			// deeper than LayerSlots still embed fully.
			for l := slot; l < net.LayerCount(); l++ {
				layerData = append(layerData, net.W[l].Data...)
			}
		} else if slot < net.LayerCount() {
			layerData = net.W[slot].Data
		}
		s := tensor.Summarize(layerData)
		out = append(out, s.Mean, math.Sqrt(s.Variance), s.Kurtosis, s.AbsMean, s.Max-s.Min)
	}
	sketch := e.proj.Apply(net.FlattenWeights())
	out = append(out, sketch...)
	return out, nil
}

// BehaviorEmbedder embeds the extrinsic viewpoint p_θ by probing the model
// with a shared, deterministic probe set and concatenating the output
// distributions. Models with mismatched input dimension cannot be probed and
// return an error; output distributions shorter than MaxClasses are
// zero-padded so heterogeneous models share the space.
type BehaviorEmbedder struct {
	Probes     tensor.Matrix
	MaxClasses int
}

// NewBehaviorEmbedder builds an embedder probing with nProbes points of the
// given input dimension.
func NewBehaviorEmbedder(inputDim, nProbes, maxClasses int, seed uint64) *BehaviorEmbedder {
	if maxClasses <= 0 {
		maxClasses = 8
	}
	return &BehaviorEmbedder{
		Probes:     data.ProbeSet(inputDim, nProbes, seed),
		MaxClasses: maxClasses,
	}
}

// Name implements Embedder.
func (e *BehaviorEmbedder) Name() string { return "behavior" }

// Dim implements Embedder.
func (e *BehaviorEmbedder) Dim() int { return e.Probes.Rows * e.MaxClasses }

// Embed implements Embedder.
func (e *BehaviorEmbedder) Embed(h *model.Handle) (tensor.Vector, error) {
	in, err := h.InputDim()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrViewUnavailable, err)
	}
	if in != e.Probes.Cols {
		return nil, fmt.Errorf("embedding: model input dim %d != probe dim %d", in, e.Probes.Cols)
	}
	outDim, err := h.OutputDim()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrViewUnavailable, err)
	}
	if outDim > e.MaxClasses {
		return nil, fmt.Errorf("embedding: model has %d classes > max %d", outDim, e.MaxClasses)
	}
	out := make(tensor.Vector, 0, e.Dim())
	for i := 0; i < e.Probes.Rows; i++ {
		p, err := h.Probs(e.Probes.Row(i))
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
		for j := outDim; j < e.MaxClasses; j++ {
			out = append(out, 0)
		}
	}
	return out, nil
}

// HashTextVector embeds text into dim buckets with the hashing trick,
// L2-normalized. Used by CardEmbedder and by MLQL text predicates.
func HashTextVector(text string, dim int) tensor.Vector {
	v := tensor.NewVector(dim)
	for _, tok := range data.Tokenize(text) {
		h := fnv.New32a()
		h.Write([]byte(tok))
		v[int(h.Sum32())%dim]++
	}
	// Dampen high-frequency tokens (sqrt-TF) then normalize.
	for i, x := range v {
		v[i] = math.Sqrt(x)
	}
	v.Normalize()
	return v
}

// CardEmbedder embeds the documentation viewpoint: a hashed bag of words of
// the model card text. It needs access to the card, which the lake supplies
// through the lookup function (the embedder itself stays storage-agnostic).
type CardEmbedder struct {
	DimBuckets int
	Lookup     func(modelID string) (string, error) // returns card text
}

// Name implements Embedder.
func (e *CardEmbedder) Name() string { return "card" }

// Dim implements Embedder.
func (e *CardEmbedder) Dim() int { return e.DimBuckets }

// Embed implements Embedder.
func (e *CardEmbedder) Embed(h *model.Handle) (tensor.Vector, error) {
	if e.Lookup == nil {
		return nil, fmt.Errorf("embedding: CardEmbedder has no lookup")
	}
	text, err := e.Lookup(h.ID())
	if err != nil {
		return nil, fmt.Errorf("embedding: card text for %s: %w", h.ID(), err)
	}
	return HashTextVector(text, e.DimBuckets), nil
}

// HybridEmbedder concatenates sub-embeddings, each L2-normalized then scaled
// by its weight. Sub-embedders whose viewpoint is unavailable contribute a
// zero block when Lenient is set (so closed models can still be indexed by
// their remaining viewpoints); otherwise the error propagates.
type HybridEmbedder struct {
	Parts   []Embedder
	Weights []float64
	Lenient bool
}

// Name implements Embedder.
func (e *HybridEmbedder) Name() string {
	s := "hybrid("
	for i, p := range e.Parts {
		if i > 0 {
			s += "+"
		}
		s += p.Name()
	}
	return s + ")"
}

// Dim implements Embedder.
func (e *HybridEmbedder) Dim() int {
	d := 0
	for _, p := range e.Parts {
		d += p.Dim()
	}
	return d
}

// Embed implements Embedder.
func (e *HybridEmbedder) Embed(h *model.Handle) (tensor.Vector, error) {
	if len(e.Weights) != 0 && len(e.Weights) != len(e.Parts) {
		return nil, fmt.Errorf("embedding: %d weights for %d parts", len(e.Weights), len(e.Parts))
	}
	out := make(tensor.Vector, 0, e.Dim())
	for i, p := range e.Parts {
		v, err := p.Embed(h)
		if err != nil {
			if e.Lenient && errors.Is(err, ErrViewUnavailable) {
				out = append(out, make(tensor.Vector, p.Dim())...)
				continue
			}
			return nil, err
		}
		if len(v) != p.Dim() {
			return nil, fmt.Errorf("embedding: %s emitted %d dims, declared %d", p.Name(), len(v), p.Dim())
		}
		v = v.Clone()
		v.Normalize()
		w := 1.0
		if len(e.Weights) > 0 {
			w = e.Weights[i]
		}
		v.Scale(w)
		out = append(out, v...)
	}
	return out, nil
}

package embedding

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"modellake/internal/fault"
	"modellake/internal/model"
	"modellake/internal/tensor"
)

// This file is the embedding cache behind the parallel ingest pipeline:
// embedding a model is the CPU-heavy stage of indexing, and both reindexing
// and repeated lake-task experiments embed the same weights again and again.
// The cache is content-addressed — keyed by (embedder name, SHA-256 of the
// model's flattened weights) inside a namespace that encodes the lake's
// embedding configuration — so a cached vector can only ever be returned
// for the exact function application that produced it. Entries carry a
// checksum and are verified on load: a torn or corrupted cache file is a
// cache miss that falls back to recomputation, never a wrong vector.

// Fingerprint returns a content hash of the model's parameters θ, the cache
// key component that changes iff the weights change. Models that withhold
// intrinsics report ok=false and are not cacheable (their behaviour cannot
// be tied to a stable content address).
func Fingerprint(h *model.Handle) (string, bool) {
	w, err := h.Weights()
	if err != nil {
		return "", false
	}
	hash := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(w)))
	hash.Write(buf[:])
	for _, x := range w {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		hash.Write(buf[:])
	}
	return hex.EncodeToString(hash.Sum(nil)), true
}

// vecMagic heads every cache file; bumping it invalidates all caches.
const vecMagic = "MLVC1\n"

// VectorCache stores embedding vectors keyed by (embedder name, weights
// fingerprint). It always keeps an in-process map; with a non-empty
// directory it additionally persists entries (atomic temp+rename writes
// routed through an optional fault-injectable filesystem) so caches survive
// restarts and are shared across lake reopens. All methods are safe for
// concurrent use.
type VectorCache struct {
	dir       string // "" = memory only
	namespace string
	fsys      *fault.FS

	mu  sync.RWMutex
	mem map[string]tensor.Vector

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewVectorCache opens a cache rooted at dir (created on demand; empty for
// memory-only). namespace isolates incompatible embedding configurations —
// callers must fold every parameter that changes embedder output (probe
// seeds, dimensions, counts) into it, because the cache trusts the namespace
// for invalidation. fsys routes persistence IO for fault injection; nil uses
// the real filesystem.
func NewVectorCache(dir, namespace string, fsys *fault.FS) *VectorCache {
	return &VectorCache{
		dir:       dir,
		namespace: namespace,
		fsys:      fsys,
		mem:       make(map[string]tensor.Vector),
	}
}

// Stats reports cache hits and misses since construction.
func (c *VectorCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// sanitize maps an embedder name like "hybrid(weight+behavior)" to a
// filesystem-safe path component.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

// vectorCacheMemEntries bounds the in-process map. The map is a recompute
// (or disk-reread) accelerator, not a source of truth, so when it fills up
// it is simply reset — an O(1) eviction that keeps a sustained ingest of
// fresh fingerprints (each a guaranteed miss) from pinning every embedding
// the lake has ever produced in RAM.
const vectorCacheMemEntries = 8192

// storeLocked inserts under the entry cap; callers hold c.mu.
func (c *VectorCache) storeLocked(key string, v tensor.Vector) {
	if len(c.mem) >= vectorCacheMemEntries {
		c.mem = make(map[string]tensor.Vector, vectorCacheMemEntries/4)
	}
	c.mem[key] = v
}

func (c *VectorCache) memKey(embedder, fp string) string {
	return embedder + "\x00" + fp
}

func (c *VectorCache) pathFor(embedder, fp string) string {
	return filepath.Join(c.dir, sanitize(c.namespace), sanitize(embedder), fp+".vec")
}

// Get returns the cached vector for (embedder, fp) if present and valid.
// dim guards against entries written by a differently-shaped embedder:
// mismatches are treated as misses. The returned vector is a copy the
// caller may mutate.
func (c *VectorCache) Get(embedder string, dim int, fp string) (tensor.Vector, bool) {
	key := c.memKey(embedder, fp)
	c.mu.RLock()
	v, ok := c.mem[key]
	c.mu.RUnlock()
	if ok && len(v) == dim {
		c.hits.Add(1)
		return v.Clone(), true
	}
	if c.dir != "" {
		if v, ok := loadVecFile(c.pathFor(embedder, fp)); ok && len(v) == dim {
			c.mu.Lock()
			c.storeLocked(key, v)
			c.mu.Unlock()
			c.hits.Add(1)
			return v.Clone(), true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores v under (embedder, fp). Persistence is best-effort: an IO
// failure degrades the cache (the entry stays in memory) but is returned so
// callers that care — the crash sweep — can observe it.
func (c *VectorCache) Put(embedder, fp string, v tensor.Vector) error {
	key := c.memKey(embedder, fp)
	c.mu.Lock()
	c.storeLocked(key, v.Clone())
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.writeVecFile(c.pathFor(embedder, fp), v)
}

// encodeVec renders the cache file: magic, dim, payload, then an FNV-64a
// checksum over everything before it. The checksum is what turns a torn
// write into a detected miss instead of a silently wrong vector.
func encodeVec(v tensor.Vector) []byte {
	buf := make([]byte, 0, len(vecMagic)+4+8*len(v)+8)
	buf = append(buf, vecMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	sum := fnv.New64a()
	sum.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, sum.Sum64())
}

// loadVecFile reads and verifies one cache file. Any defect — short file,
// bad magic, length mismatch, checksum mismatch, non-finite component —
// reports ok=false, which callers treat as a miss.
func loadVecFile(path string) (tensor.Vector, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(b) < len(vecMagic)+4+8 || string(b[:len(vecMagic)]) != vecMagic {
		return nil, false
	}
	payload, sumBytes := b[:len(b)-8], b[len(b)-8:]
	sum := fnv.New64a()
	sum.Write(payload)
	if sum.Sum64() != binary.LittleEndian.Uint64(sumBytes) {
		return nil, false
	}
	dim := int(binary.LittleEndian.Uint32(payload[len(vecMagic):]))
	data := payload[len(vecMagic)+4:]
	if dim < 0 || len(data) != 8*dim {
		return nil, false
	}
	v := make(tensor.Vector, dim)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			return nil, false
		}
	}
	return v, true
}

// writeVecFile persists one entry atomically: temp file, write, fsync,
// rename, directory fsync — the same discipline as the blob store, so a
// crash leaves either the old state or the complete new file.
func (c *VectorCache) writeVecFile(path string, v tensor.Vector) error {
	dir := filepath.Dir(path)
	if err := c.fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("embedding: cache dir: %w", err)
	}
	tmp, err := c.fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("embedding: cache temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(encodeVec(v)); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("embedding: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("embedding: cache sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("embedding: cache close: %w", err)
	}
	if err := c.fsys.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("embedding: cache rename: %w", err)
	}
	if err := c.fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("embedding: cache dir sync: %w", err)
	}
	return nil
}

// Cached wraps an embedder with a vector cache. It must only wrap embedders
// whose output is a pure function of the model's weights (weight-space,
// behavioural, and hybrids of those): the cache key is the weights hash, so
// an embedder that also reads external state — e.g. CardEmbedder, which
// reads the card text — would serve stale vectors.
type Cached struct {
	Inner Embedder
	Cache *VectorCache
}

// NewCached wraps inner with cache; a nil cache returns inner unchanged.
func NewCached(inner Embedder, cache *VectorCache) Embedder {
	if cache == nil {
		return inner
	}
	return &Cached{Inner: inner, Cache: cache}
}

// Name implements Embedder.
func (e *Cached) Name() string { return e.Inner.Name() }

// Dim implements Embedder.
func (e *Cached) Dim() int { return e.Inner.Dim() }

// Embed implements Embedder: cache hit, else compute and (best-effort)
// persist. Models without a stable fingerprint bypass the cache entirely.
func (e *Cached) Embed(h *model.Handle) (tensor.Vector, error) {
	fp, ok := Fingerprint(h)
	if !ok {
		return e.Inner.Embed(h)
	}
	if v, ok := e.Cache.Get(e.Inner.Name(), e.Inner.Dim(), fp); ok {
		return v, nil
	}
	v, err := e.Inner.Embed(h)
	if err != nil {
		return nil, err
	}
	_ = e.Cache.Put(e.Inner.Name(), fp, v) // cache is an accelerator; IO failure must not fail the embed
	return v, nil
}

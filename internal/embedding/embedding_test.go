package embedding

import (
	"errors"
	"fmt"
	"testing"

	"modellake/internal/data"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func trainedModel(t *testing.T, domainName string, seed uint64) *model.Model {
	t.Helper()
	d := data.NewDomain(domainName, 8, 3, 100)
	ds := d.Sample(domainName+"/v1", 200, 0.4, xrand.New(seed))
	net := nn.NewMLP([]int{8, 16, 3}, nn.ReLU, xrand.New(seed+1))
	if _, err := nn.Train(net, ds, nn.DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	return &model.Model{
		ID:   fmt.Sprintf("m-%s-%d", domainName, seed),
		Name: domainName,
		Net:  net,
		Hist: &model.History{DatasetDomain: domainName, DatasetID: domainName + "/v1"},
	}
}

func TestWeightEmbedderDim(t *testing.T) {
	e := NewWeightEmbedder(32, 4, 7)
	m := trainedModel(t, "legal", 1)
	v, err := e.Embed(model.NewHandle(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != e.Dim() {
		t.Fatalf("embedding length %d != Dim %d", len(v), e.Dim())
	}
}

func TestWeightEmbedderDeterminism(t *testing.T) {
	m := trainedModel(t, "legal", 1)
	e1 := NewWeightEmbedder(32, 4, 7)
	e2 := NewWeightEmbedder(32, 4, 7)
	v1, _ := e1.Embed(model.NewHandle(m))
	v2, _ := e2.Embed(model.NewHandle(m))
	if tensor.L2Distance(v1, v2) != 0 {
		t.Fatal("same-seed weight embedders disagree")
	}
}

func TestWeightEmbedderRequiresIntrinsics(t *testing.T) {
	m := trainedModel(t, "legal", 1)
	e := NewWeightEmbedder(32, 4, 7)
	_, err := e.Embed(model.WithViews(m, model.ViewExtrinsic))
	if !errors.Is(err, ErrViewUnavailable) {
		t.Fatalf("expected ErrViewUnavailable, got %v", err)
	}
}

func TestWeightEmbedderSeparatesLineages(t *testing.T) {
	// A fine-tuned child must embed closer to its parent than to an
	// unrelated model — the property version recovery relies on.
	parent := trainedModel(t, "legal", 1)
	child := &model.Model{ID: "child", Net: parent.Net.Clone()}
	d := data.NewDomain("legal", 8, 3, 100).Shifted("legal-ft", 0.5, 9)
	ds := d.Sample("legal-ft/v1", 100, 0.4, xrand.New(5))
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = 3
	if _, err := nn.Train(child.Net, ds, cfg); err != nil {
		t.Fatal(err)
	}
	unrelated := trainedModel(t, "medical", 77)

	e := NewWeightEmbedder(32, 4, 7)
	pv, _ := e.Embed(model.NewHandle(parent))
	cv, _ := e.Embed(model.NewHandle(child))
	uv, _ := e.Embed(model.NewHandle(unrelated))
	if tensor.L2Distance(pv, cv) >= tensor.L2Distance(pv, uv) {
		t.Fatal("child does not embed nearer its parent than an unrelated model")
	}
}

func TestWeightEmbedderDeepModelFolding(t *testing.T) {
	e := NewWeightEmbedder(16, 2, 7) // fewer slots than layers
	net := nn.NewMLP([]int{4, 8, 8, 8, 2}, nn.ReLU, xrand.New(3))
	m := &model.Model{ID: "deep", Net: net}
	v, err := e.Embed(model.NewHandle(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != e.Dim() {
		t.Fatalf("deep model embedding length %d != %d", len(v), e.Dim())
	}
}

func TestBehaviorEmbedderBasics(t *testing.T) {
	e := NewBehaviorEmbedder(8, 16, 4, 99)
	m := trainedModel(t, "legal", 1)
	v, err := e.Embed(model.NewHandle(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != e.Dim() {
		t.Fatalf("embedding length %d != Dim %d", len(v), e.Dim())
	}
	// Padded class slots must be zero (model has 3 classes, max 4).
	for i := 3; i < len(v); i += 4 {
		if v[i] != 0 {
			t.Fatalf("pad slot %d = %v, want 0", i, v[i])
		}
	}
}

func TestBehaviorEmbedderWorksWithoutIntrinsics(t *testing.T) {
	// The whole point of the extrinsic viewpoint: closed-weight models can
	// still be embedded behaviourally.
	m := trainedModel(t, "legal", 1)
	e := NewBehaviorEmbedder(8, 16, 4, 99)
	if _, err := e.Embed(model.WithViews(m, model.ViewExtrinsic)); err != nil {
		t.Fatalf("behaviour embedding should not need intrinsics: %v", err)
	}
}

func TestBehaviorEmbedderSimilarModelsEmbedNear(t *testing.T) {
	a := trainedModel(t, "legal", 1)
	b := trainedModel(t, "legal", 2) // same domain, different seed
	c := trainedModel(t, "medical", 3)
	e := NewBehaviorEmbedder(8, 32, 4, 99)
	av, _ := e.Embed(model.NewHandle(a))
	bv, _ := e.Embed(model.NewHandle(b))
	cv, _ := e.Embed(model.NewHandle(c))
	if tensor.L2Distance(av, bv) >= tensor.L2Distance(av, cv) {
		t.Fatal("same-domain models do not embed nearer than cross-domain")
	}
}

func TestBehaviorEmbedderDimMismatch(t *testing.T) {
	e := NewBehaviorEmbedder(5, 8, 4, 99)
	m := trainedModel(t, "legal", 1) // input dim 8
	if _, err := e.Embed(model.NewHandle(m)); err == nil {
		t.Fatal("expected input dim error")
	}
}

func TestBehaviorEmbedderTooManyClasses(t *testing.T) {
	e := NewBehaviorEmbedder(8, 8, 2, 99)
	m := trainedModel(t, "legal", 1) // 3 classes
	if _, err := e.Embed(model.NewHandle(m)); err == nil {
		t.Fatal("expected class-count error")
	}
}

func TestHashTextVector(t *testing.T) {
	v1 := HashTextVector("legal statute court", 64)
	v2 := HashTextVector("legal statute court", 64)
	if tensor.L2Distance(v1, v2) != 0 {
		t.Fatal("hashing not deterministic")
	}
	v3 := HashTextVector("medical patient dosage", 64)
	simSame := tensor.CosineSimilarity(v1, v2)
	simDiff := tensor.CosineSimilarity(v1, v3)
	if simSame <= simDiff {
		t.Fatalf("similar text not more similar: %v vs %v", simSame, simDiff)
	}
	if HashTextVector("", 8).Norm() != 0 {
		t.Fatal("empty text should embed to zero")
	}
}

func TestCardEmbedder(t *testing.T) {
	texts := map[string]string{"m-legal-1": "legal statute court contract"}
	e := &CardEmbedder{DimBuckets: 64, Lookup: func(id string) (string, error) {
		txt, ok := texts[id]
		if !ok {
			return "", fmt.Errorf("no card for %s", id)
		}
		return txt, nil
	}}
	m := trainedModel(t, "legal", 1)
	v, err := e.Embed(model.NewHandle(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 64 {
		t.Fatalf("dim = %d", len(v))
	}
	m2 := trainedModel(t, "medical", 2)
	if _, err := e.Embed(model.NewHandle(m2)); err == nil {
		t.Fatal("expected lookup error")
	}
	bad := &CardEmbedder{DimBuckets: 8}
	if _, err := bad.Embed(model.NewHandle(m)); err == nil {
		t.Fatal("expected no-lookup error")
	}
}

func TestHybridEmbedderConcats(t *testing.T) {
	m := trainedModel(t, "legal", 1)
	we := NewWeightEmbedder(16, 4, 7)
	be := NewBehaviorEmbedder(8, 8, 4, 99)
	h := &HybridEmbedder{Parts: []Embedder{we, be}}
	v, err := h.Embed(model.NewHandle(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != we.Dim()+be.Dim() {
		t.Fatalf("hybrid dim %d != %d", len(v), we.Dim()+be.Dim())
	}
	if h.Name() != "hybrid(weight+behavior)" {
		t.Fatalf("Name = %q", h.Name())
	}
}

func TestHybridLenientZeroesMissingViews(t *testing.T) {
	m := trainedModel(t, "legal", 1)
	we := NewWeightEmbedder(16, 4, 7)
	be := NewBehaviorEmbedder(8, 8, 4, 99)
	h := &HybridEmbedder{Parts: []Embedder{we, be}, Lenient: true}
	v, err := h.Embed(model.WithViews(m, model.ViewExtrinsic))
	if err != nil {
		t.Fatal(err)
	}
	// Weight block must be all zeros.
	for i := 0; i < we.Dim(); i++ {
		if v[i] != 0 {
			t.Fatal("lenient hybrid leaked intrinsic data")
		}
	}
	// Strict hybrid errors instead.
	strict := &HybridEmbedder{Parts: []Embedder{we, be}}
	if _, err := strict.Embed(model.WithViews(m, model.ViewExtrinsic)); !errors.Is(err, ErrViewUnavailable) {
		t.Fatalf("strict hybrid should propagate: %v", err)
	}
}

func TestHybridWeightsValidation(t *testing.T) {
	m := trainedModel(t, "legal", 1)
	we := NewWeightEmbedder(16, 4, 7)
	h := &HybridEmbedder{Parts: []Embedder{we}, Weights: []float64{1, 2}}
	if _, err := h.Embed(model.NewHandle(m)); err == nil {
		t.Fatal("expected weight-count error")
	}
}

package embedding

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func testModel(seed uint64) *model.Model {
	rng := xrand.New(seed)
	net := nn.NewMLP([]int{8, 6, 4}, nn.Tanh, rng)
	return &model.Model{ID: fmt.Sprintf("m%d", seed), Name: "m", Net: net}
}

func TestFingerprintTracksWeights(t *testing.T) {
	a := testModel(1)
	fpA, ok := Fingerprint(model.NewHandle(a))
	if !ok || fpA == "" {
		t.Fatal("open-weights model must fingerprint")
	}
	// Same weights → same fingerprint, regardless of identity.
	clone := &model.Model{ID: "other-id", Name: "other", Net: a.Net.Clone()}
	fpClone, _ := Fingerprint(model.NewHandle(clone))
	if fpClone != fpA {
		t.Fatal("identical weights produced different fingerprints")
	}
	// A perturbed weight → different fingerprint.
	clone.Net.W[0].Data[0] += 1e-9
	fpPerturbed, _ := Fingerprint(model.NewHandle(clone))
	if fpPerturbed == fpA {
		t.Fatal("changed weights kept the same fingerprint")
	}
	// Closed-weights models are not cacheable.
	if _, ok := Fingerprint(model.WithViews(a, model.ViewExtrinsic)); ok {
		t.Fatal("closed-weights model must not fingerprint")
	}
}

func TestVectorCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewVectorCache(dir, "ns", nil)
	v := tensor.Vector{1.5, -2.25, 0, 1e-300}
	if err := c.Put("weight", "fp1", v); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("weight", len(v), "fp1")
	if !ok {
		t.Fatal("miss after put")
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, got[i], v[i])
		}
	}
	// The returned vector is a copy: mutating it must not poison the cache.
	got[0] = 999
	again, _ := c.Get("weight", len(v), "fp1")
	if again[0] != 1.5 {
		t.Fatal("cache entry aliased to caller's vector")
	}
	// A second cache over the same directory reads the persisted entry.
	c2 := NewVectorCache(dir, "ns", nil)
	if _, ok := c2.Get("weight", len(v), "fp1"); !ok {
		t.Fatal("persisted entry not visible to a fresh cache")
	}
	// Wrong dimension and wrong embedder are misses.
	if _, ok := c2.Get("weight", len(v)+1, "fp1"); ok {
		t.Fatal("dimension mismatch served from cache")
	}
	if _, ok := c2.Get("behavior", len(v), "fp1"); ok {
		t.Fatal("other embedder's entry served")
	}
	hits, misses := c2.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits %d misses, want 1/2", hits, misses)
	}
}

func TestVectorCacheNamespaceIsolation(t *testing.T) {
	dir := t.TempDir()
	a := NewVectorCache(dir, "cfgA", nil)
	if err := a.Put("weight", "fp", tensor.Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	b := NewVectorCache(dir, "cfgB", nil)
	if _, ok := b.Get("weight", 2, "fp"); ok {
		t.Fatal("entry leaked across namespaces")
	}
}

// TestVectorCacheCorruptionDetected: every way a cache file can rot — torn
// tail, flipped byte, truncated header, garbage — must read as a miss,
// never as a wrong vector.
func TestVectorCacheCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	c := NewVectorCache(dir, "ns", nil)
	v := tensor.Vector{3.14, 2.71, -1.61}
	if err := c.Put("weight", "fp", v); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ns", "weight", "fp.vec")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][]byte{
		"empty":          {},
		"torn-half":      pristine[:len(pristine)/2],
		"torn-one-byte":  pristine[:len(pristine)-1],
		"bad-magic":      append([]byte("XXXXX\n"), pristine[6:]...),
		"garbage":        []byte("not a cache file at all"),
		"extra-tail":     append(append([]byte{}, pristine...), 0xFF),
		"flipped-middle": flipByte(pristine, len(pristine)/2),
		"flipped-sum":    flipByte(pristine, len(pristine)-1),
	}
	for name, data := range corruptions {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			fresh := NewVectorCache(dir, "ns", nil)
			if got, ok := fresh.Get("weight", len(v), "fp"); ok {
				t.Fatalf("corrupted file served as a hit: %v", got)
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0x40
	return out
}

// TestCachedEmbedderHitsAndRecomputes: second embed of the same weights is
// a cache hit with an identical vector; a corrupted entry silently
// recomputes; a restricted handle bypasses the cache.
func TestCachedEmbedderHitsAndRecomputes(t *testing.T) {
	dir := t.TempDir()
	cache := NewVectorCache(dir, "ns", nil)
	inner := NewWeightEmbedder(8, 2, 5)
	emb := NewCached(inner, cache)
	m := testModel(2)
	h := model.NewHandle(m)

	first, err := emb.Embed(h)
	if err != nil {
		t.Fatal(err)
	}
	second, err := emb.Embed(h)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("second embed was not a cache hit (hits=%d)", hits)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cached vector differs at %d: %v != %v", i, second[i], first[i])
		}
	}

	// Corrupt the persisted entry; a fresh cache must verify, miss, and
	// recompute the exact same vector.
	fp, _ := Fingerprint(h)
	path := filepath.Join(dir, "ns", "weight", fp+".vec")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewCached(inner, NewVectorCache(dir, "ns", nil))
	recomputed, err := fresh.Embed(h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if recomputed[i] != first[i] {
			t.Fatalf("recomputed vector differs at %d", i)
		}
	}

	// Closed-weights handles bypass the cache entirely (BehaviorEmbedder
	// can still embed them; the result is just never cached).
	be := NewBehaviorEmbedder(8, 4, 8, 5)
	cc := NewVectorCache("", "ns", nil)
	cachedBE := NewCached(be, cc)
	if _, err := cachedBE.Embed(model.WithViews(m, model.ViewExtrinsic)); err != nil {
		t.Fatal(err)
	}
	if h, m := cc.Stats(); h != 0 || m != 0 {
		t.Fatalf("uncacheable model touched the cache: %d/%d", h, m)
	}

	// NewCached with a nil cache is the identity.
	if NewCached(inner, nil) != Embedder(inner) {
		t.Fatal("nil cache should return the inner embedder")
	}
}

// TestVectorCacheConcurrent hammers Put/Get from many goroutines over
// overlapping keys; -race is the assertion, plus every hit must be correct.
func TestVectorCacheConcurrent(t *testing.T) {
	c := NewVectorCache(t.TempDir(), "ns", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("fp%d", i%10)
				want := tensor.Vector{float64(i % 10), 1}
				if err := c.Put("e", key, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := c.Get("e", 2, key); ok && got[0] != want[0] {
					t.Errorf("got %v for key %s", got, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package audit

import (
	"strings"
	"testing"

	"modellake/internal/card"
	"modellake/internal/version"
)

func chainGraph() *version.Graph {
	return &version.Graph{
		Nodes: []string{"base", "mid", "leaf", "island"},
		Edges: []version.Edge{
			{Parent: "base", Child: "mid"},
			{Parent: "mid", Child: "leaf"},
		},
	}
}

func fullCard() *card.Card {
	return &card.Card{
		ModelID: "leaf", Name: "leaf", Description: "d", Task: "t", Domain: "legal",
		Architecture: "mlp", TrainingData: "legal/v1", BaseModel: "mid", Transform: "finetune",
		Metrics: map[string]float64{"acc": 0.9}, IntendedUse: "u", Limitations: "l",
		License: "apache-2.0", Contact: "c",
	}
}

func TestCleanModelPasses(t *testing.T) {
	r := Run(Input{ModelID: "leaf", Card: fullCard(), Graph: chainGraph(), MembershipAUC: 0.52})
	if len(r.Findings) != 0 {
		t.Fatalf("clean model has findings: %+v", r.Findings)
	}
	if r.HasCritical() {
		t.Fatal("clean model flagged critical")
	}
	if len(r.Answers) != 5 {
		t.Fatalf("questionnaire has %d answers, want 5", len(r.Answers))
	}
}

func TestMissingCardIsCritical(t *testing.T) {
	r := Run(Input{ModelID: "leaf", MembershipAUC: -1})
	if !r.HasCritical() {
		t.Fatal("missing card not critical")
	}
}

func TestIncompleteCardWarned(t *testing.T) {
	c := &card.Card{ModelID: "leaf", Name: "leaf", Domain: "legal"}
	r := Run(Input{ModelID: "leaf", Card: c, MembershipAUC: -1})
	found := false
	for _, f := range r.Findings {
		if f.ID == "A1" && f.Severity == SeverityWarning {
			found = true
		}
	}
	if !found {
		t.Fatalf("incomplete card not warned: %+v", r.Findings)
	}
}

func TestUpstreamRiskPropagates(t *testing.T) {
	flagged := map[string]string{"base": "poisoned training data"}
	r := Run(Input{
		ModelID: "leaf", Card: fullCard(), Graph: chainGraph(),
		Flagged: flagged, MembershipAUC: -1,
	})
	if !r.HasCritical() {
		t.Fatal("descendant of flagged base not critical")
	}
	var detail string
	for _, f := range r.Findings {
		if f.ID == "A2" {
			detail = f.Detail
		}
	}
	if !strings.Contains(detail, "base") || !strings.Contains(detail, "poisoned") {
		t.Fatalf("risk detail missing provenance: %q", detail)
	}

	// A model outside the flagged lineage is unaffected.
	rIsland := Run(Input{
		ModelID: "island", Card: fullCard(), Graph: chainGraph(),
		Flagged: flagged, MembershipAUC: -1,
	})
	for _, f := range rIsland.Findings {
		if f.ID == "A2" {
			t.Fatal("island inherited risk it should not")
		}
	}
}

func TestDirectFlagReported(t *testing.T) {
	r := Run(Input{
		ModelID: "mid", Card: fullCard(), Graph: chainGraph(),
		Flagged: map[string]string{"mid": "backdoor"}, MembershipAUC: -1,
	})
	if !r.HasCritical() {
		t.Fatal("directly flagged model not critical")
	}
}

func TestMembershipExposure(t *testing.T) {
	r := Run(Input{ModelID: "leaf", Card: fullCard(), MembershipAUC: 0.9})
	found := false
	for _, f := range r.Findings {
		if f.ID == "A3" {
			found = true
		}
	}
	if !found {
		t.Fatal("high membership AUC not flagged")
	}
	rOK := Run(Input{ModelID: "leaf", Card: fullCard(), MembershipAUC: 0.55})
	for _, f := range rOK.Findings {
		if f.ID == "A3" {
			t.Fatal("acceptable AUC flagged")
		}
	}
}

func TestDocFlagsSurface(t *testing.T) {
	r := Run(Input{
		ModelID: "leaf", Card: fullCard(), MembershipAUC: -1,
		DocFlags: []string{`declared domain "medical" contradicts lake analysis "legal"`},
	})
	if !r.HasCritical() {
		t.Fatal("doc contradiction not critical")
	}
}

func TestNoLicenseWarned(t *testing.T) {
	c := fullCard()
	c.License = ""
	r := Run(Input{ModelID: "leaf", Card: c, MembershipAUC: -1})
	found := false
	for _, f := range r.Findings {
		if f.ID == "A5" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing license not warned")
	}
}

func TestPropagateRisk(t *testing.T) {
	g := chainGraph()
	out := PropagateRisk(g, map[string]string{"base": "poison"})
	if len(out["leaf"]) != 1 || out["leaf"][0] != "base" {
		t.Fatalf("leaf risks = %v", out["leaf"])
	}
	if len(out["base"]) != 1 || out["base"][0] != "base" {
		t.Fatalf("base risks = %v", out["base"])
	}
	if _, ok := out["island"]; ok {
		t.Fatal("island acquired risk")
	}
}

func TestReportMarkdown(t *testing.T) {
	r := Run(Input{ModelID: "leaf", Card: fullCard(), Graph: chainGraph(),
		Flagged: map[string]string{"base": "poison"}, MembershipAUC: 0.9})
	md := r.Markdown()
	for _, want := range []string{"# Audit Report: leaf", "## Findings", "## Questionnaire", "critical"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	clean := Run(Input{ModelID: "x", Card: fullCard(), MembershipAUC: -1})
	if !strings.Contains(clean.Markdown(), "No findings.") {
		t.Fatal("clean report should say so")
	}
}

func TestTrainingClaimVerification(t *testing.T) {
	refuted := Run(Input{
		ModelID: "leaf", Card: fullCard(), MembershipAUC: -1,
		TrainingClaim: ClaimCheck{Claim: "legal/v1", Verdict: "refuted", Evidence: 0.34},
	})
	if !refuted.HasCritical() {
		t.Fatal("refuted training claim not critical")
	}
	foundQA := false
	for _, qa := range refuted.Answers {
		if qa.ID == "A6" {
			foundQA = true
		}
	}
	if !foundQA {
		t.Fatal("A6 answer missing")
	}

	supported := Run(Input{
		ModelID: "leaf", Card: fullCard(), MembershipAUC: -1,
		TrainingClaim: ClaimCheck{Claim: "legal/v1", Verdict: "supported", Evidence: 0.97},
	})
	for _, f := range supported.Findings {
		if f.ID == "A6" {
			t.Fatal("supported claim produced a finding")
		}
	}

	unchecked := Run(Input{ModelID: "leaf", Card: fullCard(), MembershipAUC: -1})
	for _, qa := range unchecked.Answers {
		if qa.ID == "A6" {
			t.Fatal("A6 answered without a check")
		}
	}
}

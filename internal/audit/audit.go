// Package audit implements the auditing application of §6: a template
// questionnaire (in the spirit of AI-Act-style machine-readable risk
// documentation) whose answers are drafted automatically from lake analyses,
// plus the upstream-risk propagation of Wang et al. — when a base model is
// flagged, every downstream version inherits the warning through the
// (recovered) version graph.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"modellake/internal/card"
	"modellake/internal/version"
)

// Severity grades findings.
type Severity string

// Severity levels.
const (
	SeverityInfo     Severity = "info"
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

// Finding is one audit observation.
type Finding struct {
	ID       string
	Severity Severity
	Title    string
	Detail   string
}

// QA is one answered questionnaire item.
type QA struct {
	ID       string
	Question string
	Answer   string
}

// Report is a completed audit.
type Report struct {
	ModelID  string
	Findings []Finding
	Answers  []QA
}

// HasCritical reports whether the audit found any critical issue.
func (r *Report) HasCritical() bool {
	for _, f := range r.Findings {
		if f.Severity == SeverityCritical {
			return true
		}
	}
	return false
}

// Markdown renders the report.
func (r *Report) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Audit Report: %s\n\n", r.ModelID)
	if len(r.Findings) == 0 {
		sb.WriteString("No findings.\n\n")
	} else {
		sb.WriteString("## Findings\n\n")
		for _, f := range r.Findings {
			fmt.Fprintf(&sb, "- **[%s] %s** (%s): %s\n", f.Severity, f.Title, f.ID, f.Detail)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("## Questionnaire\n\n")
	for _, qa := range r.Answers {
		fmt.Fprintf(&sb, "**%s. %s**\n\n%s\n\n", qa.ID, qa.Question, qa.Answer)
	}
	return sb.String()
}

// Input carries everything the auditor consults.
type Input struct {
	ModelID string
	Card    *card.Card // may be nil (itself a finding)
	// Graph is the version graph used for risk propagation — ideally the
	// recovered graph, since declared lineage may be missing or false.
	Graph *version.Graph
	// Flagged maps model IDs to risk descriptions (e.g. a known-poisoned
	// base model).
	Flagged map[string]string
	// MembershipAUC, when >= 0, is the measured membership-inference
	// exposure of the model (0.5 = none). Pass a negative value when not
	// measured.
	MembershipAUC float64
	// DocFlags are misinformation flags raised by docgen cross-checks.
	DocFlags []string
	// TrainingClaim carries the behavioural verification of the card's
	// "trained on X" claim (empty when not checked).
	TrainingClaim ClaimCheck
}

// ClaimCheck records the verification of one documentation claim.
type ClaimCheck struct {
	Claim    string  // e.g. the claimed dataset ID
	Verdict  string  // "supported", "refuted", "inconclusive", or "" (unchecked)
	Evidence float64 // measured accuracy backing the verdict
}

// Thresholds (exported for the experiments to reference).
const (
	// CompletenessFloor is the minimum card completeness that passes audit.
	CompletenessFloor = 0.5
	// MembershipAUCCeiling is the maximum tolerated membership exposure.
	MembershipAUCCeiling = 0.65
)

// Run performs the audit.
func Run(in Input) *Report {
	r := &Report{ModelID: in.ModelID}

	// A1: documentation.
	completeness := 0.0
	if in.Card != nil {
		completeness = in.Card.Completeness()
	}
	if in.Card == nil {
		r.Findings = append(r.Findings, Finding{
			ID: "A1", Severity: SeverityCritical, Title: "No model card",
			Detail: "The model has no documentation at all.",
		})
	} else if completeness < CompletenessFloor {
		r.Findings = append(r.Findings, Finding{
			ID: "A1", Severity: SeverityWarning, Title: "Incomplete documentation",
			Detail: fmt.Sprintf("Card completeness %.0f%% is below the %.0f%% floor.",
				completeness*100, CompletenessFloor*100),
		})
	}
	r.Answers = append(r.Answers, QA{
		ID:       "A1",
		Question: "Is the model documented, and how complete is its card?",
		Answer:   fmt.Sprintf("Card completeness: %.0f%%.", completeness*100),
	})

	// A2: upstream risk propagation over the version graph.
	var inheritedRisks []string
	if in.Graph != nil && len(in.Flagged) > 0 {
		if reason, ok := in.Flagged[in.ModelID]; ok {
			inheritedRisks = append(inheritedRisks, fmt.Sprintf("directly flagged: %s", reason))
		}
		for _, anc := range in.Graph.Ancestors(in.ModelID) {
			if reason, ok := in.Flagged[anc]; ok {
				inheritedRisks = append(inheritedRisks,
					fmt.Sprintf("derived from flagged model %s: %s", anc, reason))
			}
		}
	}
	sort.Strings(inheritedRisks)
	if len(inheritedRisks) > 0 {
		r.Findings = append(r.Findings, Finding{
			ID: "A2", Severity: SeverityCritical, Title: "Upstream model risk",
			Detail: strings.Join(inheritedRisks, "; "),
		})
	}
	answer := "No known upstream risks."
	if len(inheritedRisks) > 0 {
		answer = strings.Join(inheritedRisks, "; ")
	}
	r.Answers = append(r.Answers, QA{
		ID:       "A2",
		Question: "Does the model inherit risks from upstream models it was derived from?",
		Answer:   answer,
	})

	// A3: privacy exposure.
	switch {
	case in.MembershipAUC < 0:
		r.Answers = append(r.Answers, QA{
			ID: "A3", Question: "Is training data exposed to membership inference?",
			Answer: "Not measured.",
		})
	default:
		if in.MembershipAUC > MembershipAUCCeiling {
			r.Findings = append(r.Findings, Finding{
				ID: "A3", Severity: SeverityWarning, Title: "Training-data exposure",
				Detail: fmt.Sprintf("Membership-inference AUC %.2f exceeds the %.2f ceiling.",
					in.MembershipAUC, MembershipAUCCeiling),
			})
		}
		r.Answers = append(r.Answers, QA{
			ID: "A3", Question: "Is training data exposed to membership inference?",
			Answer: fmt.Sprintf("Measured membership-inference AUC: %.2f (0.5 = no exposure).",
				in.MembershipAUC),
		})
	}

	// A4: documentation integrity (docgen cross-checks).
	if len(in.DocFlags) > 0 {
		r.Findings = append(r.Findings, Finding{
			ID: "A4", Severity: SeverityCritical, Title: "Documentation contradicts analysis",
			Detail: strings.Join(in.DocFlags, "; "),
		})
	}
	answer = "Documentation is consistent with lake analyses."
	if len(in.DocFlags) > 0 {
		answer = strings.Join(in.DocFlags, "; ")
	}
	r.Answers = append(r.Answers, QA{
		ID:       "A4",
		Question: "Do content-based analyses corroborate the documentation?",
		Answer:   answer,
	})

	// A6: training-claim verification.
	if in.TrainingClaim.Verdict != "" {
		if in.TrainingClaim.Verdict == "refuted" {
			r.Findings = append(r.Findings, Finding{
				ID: "A6", Severity: SeverityCritical, Title: "Training-data claim refuted",
				Detail: fmt.Sprintf("The card claims training on %q but the model performs at %.0f%% "+
					"(near chance) on it.", in.TrainingClaim.Claim, in.TrainingClaim.Evidence*100),
			})
		}
		r.Answers = append(r.Answers, QA{
			ID:       "A6",
			Question: "Does behavioural evidence support the declared training data?",
			Answer: fmt.Sprintf("Claim %q: %s (accuracy %.0f%%).",
				in.TrainingClaim.Claim, in.TrainingClaim.Verdict, in.TrainingClaim.Evidence*100),
		})
	}

	// A5: licensing.
	if in.Card != nil && in.Card.License == "" {
		r.Findings = append(r.Findings, Finding{
			ID: "A5", Severity: SeverityWarning, Title: "No license",
			Detail: "The card declares no license; downstream use terms are unknown.",
		})
	}
	lic := "none declared"
	if in.Card != nil && in.Card.License != "" {
		lic = in.Card.License
	}
	r.Answers = append(r.Answers, QA{
		ID:       "A5",
		Question: "Under what license may the model be used?",
		Answer:   lic,
	})
	return r
}

// PropagateRisk computes, for every model in the graph, the flagged
// ancestors whose risk it inherits. The result maps model ID → sorted list
// of flagged ancestor IDs (directly flagged models map to themselves too).
func PropagateRisk(g *version.Graph, flagged map[string]string) map[string][]string {
	out := map[string][]string{}
	for id := range flagged {
		out[id] = append(out[id], id)
		for _, d := range g.Descendants(id) {
			out[d] = append(out[d], id)
		}
	}
	for id := range out {
		sort.Strings(out[id])
	}
	return out
}

// Package registry implements the model lake's catalog: durable, named,
// versioned model records over the kvstore (metadata, cards) and the blob
// store (weights). It corresponds to the "model repository/registry" layer
// the paper surveys in §4 — storage, naming and version representation — on
// top of which the lake tasks add discovery and analysis.
//
// Key layout in the kvstore:
//
//	model/<id>        -> Record JSON
//	card/<id>         -> card JSON
//	name/<name>@<ver> -> model id
//	meta/seq          -> sequence high-water mark (leased in blocks)
//
// A registration spans several keys (record, card, name index); they are
// committed as one atomic kvstore batch record, so a crash or IO failure
// can never leave a half-registered model behind. Bulk writers use
// Prepare/Commit directly to fold many registrations (plus their
// provenance) into shared batch records and coalesced blob writes.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"

	"modellake/internal/blob"
	"modellake/internal/card"
	"modellake/internal/kvstore"
	"modellake/internal/model"
	"modellake/internal/nn"
)

// Sentinel errors.
var (
	ErrNotFound  = errors.New("registry: model not found")
	ErrDuplicate = errors.New("registry: name@version already registered")
	ErrNoWeights = errors.New("registry: model has no stored weights")
)

// Record is the catalog entry for one model. Declared fields reproduce
// whatever the uploader documented — they may be absent or false; task
// algorithms must treat them as claims, not facts.
type Record struct {
	ID        string  `json:"id"`
	Name      string  `json:"name"`
	Version   string  `json:"version"`
	Seq       uint64  `json:"seq"` // logical registration time
	Arch      string  `json:"arch,omitempty"`
	NumParams int     `json:"num_params,omitempty"`
	Weights   blob.ID `json:"weights,omitempty"` // empty for closed-weights models
	// WeightsFP is the embedding-layer fingerprint of the stored weights
	// (see embedding.Fingerprint). It keys the embedding vector cache, so a
	// rehydrating lake can look up cached vectors without reading or
	// decoding the weights blob. Empty for closed-weights models and for
	// records written before the field existed.
	WeightsFP string `json:"weights_fp,omitempty"`

	// Declared (documentation-derived) metadata.
	DeclaredBases []string       `json:"declared_bases,omitempty"`
	DeclaredData  string         `json:"declared_data,omitempty"`
	Domain        string         `json:"domain,omitempty"`
	Tags          []string       `json:"tags,omitempty"`
	Hist          *model.History `json:"history,omitempty"`
}

// seqBlock is the lease size for registration sequence numbers: one
// durable write hands out this many IDs, so bulk ingest pays ~1/seqBlock of
// a kv write per model for ID assignment. A crash can skip at most one
// block of IDs; it can never reuse one.
const seqBlock = 64

// Registry is the catalog. It is safe for concurrent use.
type Registry struct {
	kv    *kvstore.Store
	blobs blob.Store
	seq   *kvstore.Sequence
}

// New creates a registry over the given stores.
func New(kv *kvstore.Store, blobs blob.Store) *Registry {
	return &Registry{kv: kv, blobs: blobs, seq: kvstore.NewSequence(kv, "meta/seq", seqBlock)}
}

// NewInMemory creates a throwaway registry with in-memory backing stores.
func NewInMemory() *Registry {
	return New(kvstore.OpenMemory(), blob.NewMemStore())
}

func modelKey(id string) string           { return "model/" + id }
func cardKey(id string) string            { return "card/" + id }
func nameKey(name, version string) string { return "name/" + name + "@" + version }

// RegisterOptions carries the declared metadata accompanying an upload.
type RegisterOptions struct {
	Name    string
	Version string
	Tags    []string
	// WithholdWeights registers the model closed-weights: behaviour stays
	// reachable through the live handle the caller retains, but the lake
	// stores no θ.
	WithholdWeights bool
	// WeightsFP optionally records the embedding fingerprint of the
	// weights (embedding.Fingerprint) on the record, letting a later
	// rehydrate hit the vector cache without touching the weights blob.
	// Ignored for withheld weights.
	WeightsFP string
	// ID pins the model's catalog ID instead of minting one from this
	// registry's sequence. A cluster router mints IDs centrally — placement
	// is a consistent hash of the ID, so the ID must exist before a shard
	// is chosen — and passes the minted ID through here. A sequence number
	// is still consumed so Seq stays a usable logical clock either way.
	ID string
}

// Pending is a validated registration that has not been committed yet. The
// caller either hands it back to Commit, or (for bulk ingest) stores
// EncodedWeights itself via blob.Store.PutAll and folds Ops into a larger
// atomic kvstore batch. A Pending that is dropped costs nothing durable
// except a skipped sequence number.
type Pending struct {
	Rec *Record
	// Ops is the complete multi-key commit (card, record, name index).
	// Applying it atomically is what makes registration all-or-nothing.
	Ops []kvstore.Op
	// EncodedWeights is the serialized weights blob to store under
	// Rec.Weights before the ops commit; nil for closed-weights models.
	EncodedWeights []byte
	// Model is the registered model; its ID field should be set to Rec.ID
	// once the commit succeeds.
	Model *model.Model
}

// Prepare validates an upload, assigns its ID, and builds the atomic
// commit: the encoded weights blob plus the kvstore ops for every catalog
// key. Nothing durable happens here (besides, at most, a sequence lease);
// the caller commits via Commit or by applying Ops itself.
func (r *Registry) Prepare(m *model.Model, c *card.Card, opts RegisterOptions) (*Pending, error) {
	if m == nil {
		return nil, fmt.Errorf("registry: nil model")
	}
	name := opts.Name
	if name == "" {
		name = m.Name
	}
	if name == "" {
		return nil, fmt.Errorf("registry: model needs a name")
	}
	version := opts.Version
	if version == "" {
		version = "1"
	}
	if r.kv.Has(nameKey(name, version)) {
		return nil, fmt.Errorf("%w: %s@%s", ErrDuplicate, name, version)
	}
	seq, err := r.seq.Next()
	if err != nil {
		return nil, fmt.Errorf("registry: sequence: %w", err)
	}
	id := opts.ID
	if id == "" {
		id = fmt.Sprintf("m-%06d", seq)
	} else if r.kv.Has(modelKey(id)) {
		return nil, fmt.Errorf("%w: id %s", ErrDuplicate, id)
	}

	rec := &Record{
		ID:      id,
		Name:    name,
		Version: version,
		Seq:     seq,
		Tags:    append([]string(nil), opts.Tags...),
	}
	p := &Pending{Rec: rec, Model: m}
	if m.Net != nil {
		rec.Arch = m.Net.ArchString()
		rec.NumParams = m.Net.NumParams()
		if !opts.WithholdWeights {
			enc, err := nn.EncodeMLP(m.Net)
			if err != nil {
				return nil, fmt.Errorf("registry: encode weights: %w", err)
			}
			// Content addressing lets the ID be computed before the blob is
			// stored, so records can reference weights that a batch writer
			// persists later (but still before the ops commit).
			rec.Weights = blob.Sum(enc)
			rec.WeightsFP = opts.WeightsFP
			p.EncodedWeights = enc
		}
	}
	if m.Hist != nil {
		h := *m.Hist
		rec.Hist = &h
		rec.DeclaredBases = append([]string(nil), m.Hist.BaseModelIDs...)
		rec.DeclaredData = m.Hist.DatasetID
		rec.Domain = m.Hist.DatasetDomain
	}
	if c != nil {
		cc := c.Clone()
		cc.ModelID = id
		if cc.Name == "" {
			cc.Name = name
		}
		cb, err := cc.Marshal()
		if err != nil {
			return nil, err
		}
		p.Ops = append(p.Ops, kvstore.Op{Key: cardKey(id), Value: cb})
		if rec.Domain == "" {
			rec.Domain = cc.Domain
		}
		if rec.DeclaredData == "" {
			rec.DeclaredData = cc.TrainingData
		}
		if cc.BaseModel != "" && len(rec.DeclaredBases) == 0 {
			rec.DeclaredBases = []string{cc.BaseModel}
		}
	}
	rb, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("registry: marshal record: %w", err)
	}
	p.Ops = append(p.Ops,
		kvstore.Op{Key: modelKey(id), Value: rb},
		kvstore.Op{Key: nameKey(name, version), Value: []byte(id)},
	)
	return p, nil
}

// Commit stores the pending registration: weights blob first, then the
// catalog keys as one atomic batch record. A failure commits nothing
// durable (an orphaned content-addressed blob is harmless and may be
// shared).
func (r *Registry) Commit(p *Pending) (*Record, error) {
	if p.EncodedWeights != nil {
		if _, err := r.blobs.Put(p.EncodedWeights); err != nil {
			return nil, fmt.Errorf("registry: store weights: %w", err)
		}
	}
	if err := r.kv.Apply(p.Ops); err != nil {
		return nil, fmt.Errorf("registry: commit registration: %w", err)
	}
	if p.Model != nil {
		p.Model.ID = p.Rec.ID
	}
	return p.Rec, nil
}

// Register stores a model and its card, assigning a lake ID. The model's
// Hist (if any) is recorded as declared history. The card's ModelID is
// rewritten to the assigned ID. The whole registration commits as one
// atomic batch record.
func (r *Registry) Register(m *model.Model, c *card.Card, opts RegisterOptions) (*Record, error) {
	p, err := r.Prepare(m, c, opts)
	if err != nil {
		return nil, err
	}
	return r.Commit(p)
}

// Get returns the record for a model ID.
func (r *Registry) Get(id string) (*Record, error) {
	b, err := r.kv.Get(modelKey(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("registry: decode record %s: %w", id, err)
	}
	return &rec, nil
}

// Resolve maps name@version to a model ID.
func (r *Registry) Resolve(name, version string) (string, error) {
	if version == "" {
		version = "1"
	}
	b, err := r.kv.Get(nameKey(name, version))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return "", fmt.Errorf("%w: %s@%s", ErrNotFound, name, version)
		}
		return "", err
	}
	return string(b), nil
}

// LoadModel materializes the full model (weights + declared history) for id.
// Closed-weights models return ErrNoWeights.
func (r *Registry) LoadModel(id string) (*model.Model, error) {
	rec, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	if rec.Weights == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoWeights, id)
	}
	raw, err := r.blobs.Get(rec.Weights)
	if err != nil {
		return nil, fmt.Errorf("registry: load weights for %s: %w", id, err)
	}
	net, err := nn.DecodeMLP(raw)
	if err != nil {
		return nil, fmt.Errorf("registry: decode weights for %s: %w", id, err)
	}
	return &model.Model{ID: rec.ID, Name: rec.Name, Net: net, Hist: rec.Hist}, nil
}

// Card returns the stored card for id, or ErrNotFound if the model has none.
func (r *Registry) Card(id string) (*card.Card, error) {
	b, err := r.kv.Get(cardKey(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: card for %s", ErrNotFound, id)
		}
		return nil, err
	}
	return card.Unmarshal(b)
}

// PutCard replaces the card for an existing model (e.g. after docgen).
func (r *Registry) PutCard(id string, c *card.Card) error {
	if !r.kv.Has(modelKey(id)) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	cc := c.Clone()
	cc.ModelID = id
	b, err := cc.Marshal()
	if err != nil {
		return err
	}
	return r.kv.Put(cardKey(id), b)
}

// UpdateRecord persists changes to a record (e.g. cached metrics). The ID
// must already exist.
func (r *Registry) UpdateRecord(rec *Record) error {
	if !r.kv.Has(modelKey(rec.ID)) {
		return fmt.Errorf("%w: %s", ErrNotFound, rec.ID)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("registry: marshal record: %w", err)
	}
	return r.kv.Put(modelKey(rec.ID), b)
}

// List returns all records in ID (= registration) order.
func (r *Registry) List() ([]*Record, error) {
	var out []*Record
	var scanErr error
	err := r.kv.Scan("model/", func(k string, v []byte) bool {
		var rec Record
		if err := json.Unmarshal(v, &rec); err != nil {
			scanErr = fmt.Errorf("registry: decode %s: %w", k, err)
			return false
		}
		out = append(out, &rec)
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// Count returns the number of registered models.
func (r *Registry) Count() int { return len(r.kv.Keys("model/")) }

// Delete removes a model, its card, and its name-index entry. Weights blobs
// are left in place (they may be shared via content addressing).
func (r *Registry) Delete(id string) error {
	rec, err := r.Get(id)
	if err != nil {
		return err
	}
	if err := r.kv.Delete(nameKey(rec.Name, rec.Version)); err != nil {
		return err
	}
	if err := r.kv.Delete(cardKey(id)); err != nil {
		return err
	}
	return r.kv.Delete(modelKey(id))
}

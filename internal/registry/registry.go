// Package registry implements the model lake's catalog: durable, named,
// versioned model records over the kvstore (metadata, cards) and the blob
// store (weights). It corresponds to the "model repository/registry" layer
// the paper surveys in §4 — storage, naming and version representation — on
// top of which the lake tasks add discovery and analysis.
//
// Key layout in the kvstore:
//
//	model/<id>        -> Record JSON
//	card/<id>         -> card JSON
//	name/<name>@<ver> -> model id
//	meta/seq          -> monotonically increasing sequence counter
package registry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"modellake/internal/blob"
	"modellake/internal/card"
	"modellake/internal/kvstore"
	"modellake/internal/model"
	"modellake/internal/nn"
)

// Sentinel errors.
var (
	ErrNotFound  = errors.New("registry: model not found")
	ErrDuplicate = errors.New("registry: name@version already registered")
	ErrNoWeights = errors.New("registry: model has no stored weights")
)

// Record is the catalog entry for one model. Declared fields reproduce
// whatever the uploader documented — they may be absent or false; task
// algorithms must treat them as claims, not facts.
type Record struct {
	ID        string  `json:"id"`
	Name      string  `json:"name"`
	Version   string  `json:"version"`
	Seq       uint64  `json:"seq"` // logical registration time
	Arch      string  `json:"arch,omitempty"`
	NumParams int     `json:"num_params,omitempty"`
	Weights   blob.ID `json:"weights,omitempty"` // empty for closed-weights models

	// Declared (documentation-derived) metadata.
	DeclaredBases []string       `json:"declared_bases,omitempty"`
	DeclaredData  string         `json:"declared_data,omitempty"`
	Domain        string         `json:"domain,omitempty"`
	Tags          []string       `json:"tags,omitempty"`
	Hist          *model.History `json:"history,omitempty"`
}

// Registry is the catalog. It is safe for concurrent use.
type Registry struct {
	kv    *kvstore.Store
	blobs blob.Store
	mu    sync.Mutex // guards the sequence counter
}

// New creates a registry over the given stores.
func New(kv *kvstore.Store, blobs blob.Store) *Registry {
	return &Registry{kv: kv, blobs: blobs}
}

// NewInMemory creates a throwaway registry with in-memory backing stores.
func NewInMemory() *Registry {
	return New(kvstore.OpenMemory(), blob.NewMemStore())
}

func modelKey(id string) string           { return "model/" + id }
func cardKey(id string) string            { return "card/" + id }
func nameKey(name, version string) string { return "name/" + name + "@" + version }

// nextSeq atomically increments and persists the sequence counter.
func (r *Registry) nextSeq() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var seq uint64
	if b, err := r.kv.Get("meta/seq"); err == nil && len(b) == 8 {
		seq = binary.LittleEndian.Uint64(b)
	}
	seq++
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, seq)
	if err := r.kv.Put("meta/seq", buf); err != nil {
		return 0, err
	}
	return seq, nil
}

// RegisterOptions carries the declared metadata accompanying an upload.
type RegisterOptions struct {
	Name    string
	Version string
	Tags    []string
	// WithholdWeights registers the model closed-weights: behaviour stays
	// reachable through the live handle the caller retains, but the lake
	// stores no θ.
	WithholdWeights bool
}

// Register stores a model and its card, assigning a lake ID. The model's
// Hist (if any) is recorded as declared history. The card's ModelID is
// rewritten to the assigned ID.
func (r *Registry) Register(m *model.Model, c *card.Card, opts RegisterOptions) (*Record, error) {
	if m == nil {
		return nil, fmt.Errorf("registry: nil model")
	}
	name := opts.Name
	if name == "" {
		name = m.Name
	}
	if name == "" {
		return nil, fmt.Errorf("registry: model needs a name")
	}
	version := opts.Version
	if version == "" {
		version = "1"
	}
	if r.kv.Has(nameKey(name, version)) {
		return nil, fmt.Errorf("%w: %s@%s", ErrDuplicate, name, version)
	}
	seq, err := r.nextSeq()
	if err != nil {
		return nil, fmt.Errorf("registry: sequence: %w", err)
	}
	id := fmt.Sprintf("m-%06d", seq)

	rec := &Record{
		ID:      id,
		Name:    name,
		Version: version,
		Seq:     seq,
		Tags:    append([]string(nil), opts.Tags...),
	}
	if m.Net != nil {
		rec.Arch = m.Net.ArchString()
		rec.NumParams = m.Net.NumParams()
		if !opts.WithholdWeights {
			enc, err := nn.EncodeMLP(m.Net)
			if err != nil {
				return nil, fmt.Errorf("registry: encode weights: %w", err)
			}
			bid, err := r.blobs.Put(enc)
			if err != nil {
				return nil, fmt.Errorf("registry: store weights: %w", err)
			}
			rec.Weights = bid
		}
	}
	if m.Hist != nil {
		h := *m.Hist
		rec.Hist = &h
		rec.DeclaredBases = append([]string(nil), m.Hist.BaseModelIDs...)
		rec.DeclaredData = m.Hist.DatasetID
		rec.Domain = m.Hist.DatasetDomain
	}
	// The registration spans several kvstore keys; track what has been
	// written so a failure part-way can be rolled back, leaving no
	// half-registered model behind. (An already-stored weights blob is
	// deliberately left in place: content-addressed data is harmless and
	// may be shared.)
	var written []string
	rollback := func() {
		for i := len(written) - 1; i >= 0; i-- {
			_ = r.kv.Delete(written[i]) // best effort
		}
	}
	putKV := func(key string, val []byte) error {
		if err := r.kv.Put(key, val); err != nil {
			rollback()
			return err
		}
		written = append(written, key)
		return nil
	}
	if c != nil {
		cc := c.Clone()
		cc.ModelID = id
		if cc.Name == "" {
			cc.Name = name
		}
		cb, err := cc.Marshal()
		if err != nil {
			return nil, err
		}
		if err := putKV(cardKey(id), cb); err != nil {
			return nil, fmt.Errorf("registry: store card: %w", err)
		}
		if rec.Domain == "" {
			rec.Domain = cc.Domain
		}
		if rec.DeclaredData == "" {
			rec.DeclaredData = cc.TrainingData
		}
		if cc.BaseModel != "" && len(rec.DeclaredBases) == 0 {
			rec.DeclaredBases = []string{cc.BaseModel}
		}
	}
	rb, err := json.Marshal(rec)
	if err != nil {
		rollback()
		return nil, fmt.Errorf("registry: marshal record: %w", err)
	}
	if err := putKV(modelKey(id), rb); err != nil {
		return nil, fmt.Errorf("registry: store record: %w", err)
	}
	if err := putKV(nameKey(name, version), []byte(id)); err != nil {
		return nil, fmt.Errorf("registry: store name index: %w", err)
	}
	m.ID = id
	return rec, nil
}

// Get returns the record for a model ID.
func (r *Registry) Get(id string) (*Record, error) {
	b, err := r.kv.Get(modelKey(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("registry: decode record %s: %w", id, err)
	}
	return &rec, nil
}

// Resolve maps name@version to a model ID.
func (r *Registry) Resolve(name, version string) (string, error) {
	if version == "" {
		version = "1"
	}
	b, err := r.kv.Get(nameKey(name, version))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return "", fmt.Errorf("%w: %s@%s", ErrNotFound, name, version)
		}
		return "", err
	}
	return string(b), nil
}

// LoadModel materializes the full model (weights + declared history) for id.
// Closed-weights models return ErrNoWeights.
func (r *Registry) LoadModel(id string) (*model.Model, error) {
	rec, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	if rec.Weights == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoWeights, id)
	}
	raw, err := r.blobs.Get(rec.Weights)
	if err != nil {
		return nil, fmt.Errorf("registry: load weights for %s: %w", id, err)
	}
	net, err := nn.DecodeMLP(raw)
	if err != nil {
		return nil, fmt.Errorf("registry: decode weights for %s: %w", id, err)
	}
	return &model.Model{ID: rec.ID, Name: rec.Name, Net: net, Hist: rec.Hist}, nil
}

// Card returns the stored card for id, or ErrNotFound if the model has none.
func (r *Registry) Card(id string) (*card.Card, error) {
	b, err := r.kv.Get(cardKey(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: card for %s", ErrNotFound, id)
		}
		return nil, err
	}
	return card.Unmarshal(b)
}

// PutCard replaces the card for an existing model (e.g. after docgen).
func (r *Registry) PutCard(id string, c *card.Card) error {
	if !r.kv.Has(modelKey(id)) {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	cc := c.Clone()
	cc.ModelID = id
	b, err := cc.Marshal()
	if err != nil {
		return err
	}
	return r.kv.Put(cardKey(id), b)
}

// UpdateRecord persists changes to a record (e.g. cached metrics). The ID
// must already exist.
func (r *Registry) UpdateRecord(rec *Record) error {
	if !r.kv.Has(modelKey(rec.ID)) {
		return fmt.Errorf("%w: %s", ErrNotFound, rec.ID)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("registry: marshal record: %w", err)
	}
	return r.kv.Put(modelKey(rec.ID), b)
}

// List returns all records in ID (= registration) order.
func (r *Registry) List() ([]*Record, error) {
	var out []*Record
	var scanErr error
	err := r.kv.Scan("model/", func(k string, v []byte) bool {
		var rec Record
		if err := json.Unmarshal(v, &rec); err != nil {
			scanErr = fmt.Errorf("registry: decode %s: %w", k, err)
			return false
		}
		out = append(out, &rec)
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// Count returns the number of registered models.
func (r *Registry) Count() int { return len(r.kv.Keys("model/")) }

// Delete removes a model, its card, and its name-index entry. Weights blobs
// are left in place (they may be shared via content addressing).
func (r *Registry) Delete(id string) error {
	rec, err := r.Get(id)
	if err != nil {
		return err
	}
	if err := r.kv.Delete(nameKey(rec.Name, rec.Version)); err != nil {
		return err
	}
	if err := r.kv.Delete(cardKey(id)); err != nil {
		return err
	}
	return r.kv.Delete(modelKey(id))
}

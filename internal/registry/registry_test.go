package registry

import (
	"errors"
	"path/filepath"
	"testing"

	"modellake/internal/blob"
	"modellake/internal/card"
	"modellake/internal/kvstore"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/xrand"
)

func sampleModel(seed uint64) *model.Model {
	net := nn.NewMLP([]int{4, 8, 3}, nn.ReLU, xrand.New(seed))
	return &model.Model{
		Name: "sample",
		Net:  net,
		Hist: &model.History{
			DatasetID:      "legal/v1",
			DatasetDomain:  "legal",
			Transformation: model.TransformPretrain,
		},
	}
}

func sampleCard() *card.Card {
	return &card.Card{
		Name:         "sample",
		Domain:       "legal",
		Task:         "classification",
		TrainingData: "legal/v1",
		Description:  "a legal classifier",
	}
}

func TestRegisterAndLoad(t *testing.T) {
	r := NewInMemory()
	m := sampleModel(1)
	rec, err := r.Register(m, sampleCard(), RegisterOptions{Name: "legal-clf", Version: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID == "" || m.ID != rec.ID {
		t.Fatalf("ID not assigned: rec=%q model=%q", rec.ID, m.ID)
	}
	if rec.Arch != "mlp:4-8-3:relu" || rec.NumParams != m.Net.NumParams() {
		t.Fatalf("record metadata wrong: %+v", rec)
	}
	loaded, err := r.LoadModel(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	d, err := nn.WeightDistance(m.Net, loaded.Net)
	if err != nil || d != 0 {
		t.Fatalf("loaded weights differ: %v %v", d, err)
	}
	if loaded.Hist == nil || loaded.Hist.DatasetDomain != "legal" {
		t.Fatalf("declared history lost: %+v", loaded.Hist)
	}
}

func TestRegisterAssignsSequentialIDs(t *testing.T) {
	r := NewInMemory()
	for i := 0; i < 3; i++ {
		m := sampleModel(uint64(i))
		m.Name = ""
		rec, err := r.Register(m, nil, RegisterOptions{Name: "m", Version: string(rune('a' + i))})
		if err != nil {
			t.Fatal(err)
		}
		if rec.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", rec.Seq, i+1)
		}
	}
	if r.Count() != 3 {
		t.Fatalf("Count = %d, want 3", r.Count())
	}
}

func TestDuplicateNameVersionRejected(t *testing.T) {
	r := NewInMemory()
	if _, err := r.Register(sampleModel(1), nil, RegisterOptions{Name: "x", Version: "1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(sampleModel(2), nil, RegisterOptions{Name: "x", Version: "1"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("expected ErrDuplicate, got %v", err)
	}
	if _, err := r.Register(sampleModel(3), nil, RegisterOptions{Name: "x", Version: "2"}); err != nil {
		t.Fatalf("new version should register: %v", err)
	}
}

func TestResolve(t *testing.T) {
	r := NewInMemory()
	rec, err := r.Register(sampleModel(1), nil, RegisterOptions{Name: "x", Version: "2"})
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Resolve("x", "2")
	if err != nil || id != rec.ID {
		t.Fatalf("Resolve = %q, %v", id, err)
	}
	if _, err := r.Resolve("x", "9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestCardStorage(t *testing.T) {
	r := NewInMemory()
	rec, err := r.Register(sampleModel(1), sampleCard(), RegisterOptions{Name: "c"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.Card(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if c.ModelID != rec.ID || c.Domain != "legal" {
		t.Fatalf("card = %+v", c)
	}
	// Update the card.
	c.Limitations = "research only"
	if err := r.PutCard(rec.ID, c); err != nil {
		t.Fatal(err)
	}
	c2, err := r.Card(rec.ID)
	if err != nil || c2.Limitations != "research only" {
		t.Fatalf("card update lost: %+v %v", c2, err)
	}
	if err := r.PutCard("m-999999", c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("PutCard on missing model: %v", err)
	}
}

func TestCardlessModel(t *testing.T) {
	r := NewInMemory()
	rec, err := r.Register(sampleModel(1), nil, RegisterOptions{Name: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Card(rec.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound for missing card, got %v", err)
	}
}

func TestWithheldWeights(t *testing.T) {
	r := NewInMemory()
	rec, err := r.Register(sampleModel(1), nil, RegisterOptions{Name: "closed", WithholdWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Weights != "" {
		t.Fatal("weights stored despite withholding")
	}
	if _, err := r.LoadModel(rec.ID); !errors.Is(err, ErrNoWeights) {
		t.Fatalf("expected ErrNoWeights, got %v", err)
	}
	// Architecture metadata is still recorded (it is declared, not weights).
	if rec.Arch == "" {
		t.Fatal("architecture should still be recorded")
	}
}

func TestListOrder(t *testing.T) {
	r := NewInMemory()
	var ids []string
	for i := 0; i < 5; i++ {
		rec, err := r.Register(sampleModel(uint64(i)), nil,
			RegisterOptions{Name: "m", Version: string(rune('a' + i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	recs, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("List returned %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.ID != ids[i] {
			t.Fatalf("List order: got %s at %d, want %s", rec.ID, i, ids[i])
		}
	}
}

func TestDelete(t *testing.T) {
	r := NewInMemory()
	rec, err := r.Register(sampleModel(1), sampleCard(), RegisterOptions{Name: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(rec.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("record survives delete: %v", err)
	}
	if _, err := r.Card(rec.ID); !errors.Is(err, ErrNotFound) {
		t.Fatal("card survives delete")
	}
	if _, err := r.Resolve("d", "1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("name index survives delete")
	}
	if err := r.Delete("m-404040"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleting missing model: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewInMemory()
	if _, err := r.Register(nil, nil, RegisterOptions{}); err == nil {
		t.Fatal("nil model accepted")
	}
	m := sampleModel(1)
	m.Name = ""
	if _, err := r.Register(m, nil, RegisterOptions{}); err == nil {
		t.Fatal("nameless model accepted")
	}
}

func TestDurableRegistrySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.Open(filepath.Join(dir, "meta.log"), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := blob.NewFileStore(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	r := New(kv, blobs)
	orig := sampleModel(1)
	rec, err := r.Register(orig, sampleCard(), RegisterOptions{Name: "durable"})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := kvstore.Open(filepath.Join(dir, "meta.log"), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	r2 := New(kv2, blobs)
	loaded, err := r2.LoadModel(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	d, err := nn.WeightDistance(orig.Net, loaded.Net)
	if err != nil || d != 0 {
		t.Fatalf("weights differ after reopen: %v %v", d, err)
	}
	// Sequence counter continues, so new registrations do not collide.
	rec2, err := r2.Register(sampleModel(2), nil, RegisterOptions{Name: "post-reopen"})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.ID == rec.ID {
		t.Fatal("sequence counter reset after reopen")
	}
}

func TestCardFallbackMetadata(t *testing.T) {
	// When the model has no History, declared fields fall back to the card.
	r := NewInMemory()
	m := sampleModel(1)
	m.Hist = nil
	c := sampleCard()
	c.BaseModel = "m-000042"
	rec, err := r.Register(m, c, RegisterOptions{Name: "fb"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Domain != "legal" || rec.DeclaredData != "legal/v1" {
		t.Fatalf("card fallback not applied: %+v", rec)
	}
	if len(rec.DeclaredBases) != 1 || rec.DeclaredBases[0] != "m-000042" {
		t.Fatalf("base fallback not applied: %+v", rec.DeclaredBases)
	}
}

func TestCorruptRecordSurfacedByGetAndList(t *testing.T) {
	kv := kvstore.OpenMemory()
	r := New(kv, blob.NewMemStore())
	rec, err := r.Register(sampleModel(1), nil, RegisterOptions{Name: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	// Smash the stored record JSON directly.
	if err := kv.Put("model/"+rec.ID, []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(rec.ID); err == nil {
		t.Fatal("corrupt record decoded silently")
	}
	if _, err := r.List(); err == nil {
		t.Fatal("List decoded corrupt record silently")
	}
}

func TestCorruptCardSurfaced(t *testing.T) {
	kv := kvstore.OpenMemory()
	r := New(kv, blob.NewMemStore())
	rec, err := r.Register(sampleModel(1), sampleCard(), RegisterOptions{Name: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("card/"+rec.ID, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Card(rec.ID); err == nil {
		t.Fatal("corrupt card decoded silently")
	}
}

package nn

import (
	"fmt"

	"modellake/internal/tensor"
)

// EditResult reports the outcome of a model edit.
type EditResult struct {
	Succeeded bool    // whether the model now predicts the target
	DeltaNorm float64 // Frobenius norm of the applied weight delta
}

// EditAssociation performs a targeted model edit in the style of locate-and-
// edit methods (ROME and successors): it applies the minimal-Frobenius-norm
// rank-one update to the final layer so that input x is classified as target,
// leaving all other layers untouched.
//
// With h the hidden representation feeding the final layer, the update is
// ΔW = δ ⊗ h / (h·h) where δ raises the target logit just past the current
// maximum by margin. The delta has rank exactly 1 — the localized, low-rank
// signature the versioning task uses to recognize edits — and, being minimal
// in norm, perturbs behaviour on unrelated inputs as little as possible.
func EditAssociation(m *MLP, x tensor.Vector, target int, margin float64) (EditResult, error) {
	if target < 0 || target >= m.OutputDim() {
		return EditResult{}, fmt.Errorf("nn: edit target %d out of range [0,%d)", target, m.OutputDim())
	}
	if len(x) != m.InputDim() {
		return EditResult{}, fmt.Errorf("nn: edit input dim %d != model input %d", len(x), m.InputDim())
	}
	if margin <= 0 {
		margin = 0.1
	}
	L := m.LayerCount()
	// The hidden representation feeding the final layer is unchanged by
	// final-layer edits, so compute it once.
	hidden := m.hiddenRep(x)
	hh := hidden.Dot(hidden)
	if hh == 0 {
		return EditResult{}, fmt.Errorf("nn: edit input has zero hidden representation")
	}
	logits := tensor.NewVector(m.OutputDim())
	m.W[L-1].MatVec(logits, hidden)
	logits.AddScaled(1, m.B[L-1])
	if logits.ArgMax() == target {
		return EditResult{Succeeded: true}, nil
	}
	maxOther := logits[logits.ArgMax()]
	need := maxOther - logits[target] + margin
	delta := tensor.NewVector(m.OutputDim())
	delta[target] = need
	m.W[L-1].AddOuter(1/hh, delta, hidden)
	// ‖ΔW‖_F = ‖δ‖·‖h‖ / (h·h) = |need| / ‖h‖.
	return EditResult{Succeeded: true, DeltaNorm: need / hidden.Norm()}, nil
}

// EditAssociationWithContext is the covariance-aware variant of
// EditAssociation (in the spirit of ROME's C⁻¹ key weighting): contexts is a
// sample of typical model inputs; the edit direction is chosen as u = C⁻¹h,
// where C is the second-moment matrix of the hidden representations of those
// inputs, so the update's interference with typical inputs is minimized. The
// applied delta is ΔW = δ ⊗ u / (h·u), still rank one.
func EditAssociationWithContext(m *MLP, x tensor.Vector, target int, margin float64, contexts tensor.Matrix) (EditResult, error) {
	if target < 0 || target >= m.OutputDim() {
		return EditResult{}, fmt.Errorf("nn: edit target %d out of range [0,%d)", target, m.OutputDim())
	}
	if len(x) != m.InputDim() || contexts.Cols != m.InputDim() {
		return EditResult{}, fmt.Errorf("nn: edit input dims inconsistent with model input %d", m.InputDim())
	}
	if margin <= 0 {
		margin = 0.1
	}
	L := m.LayerCount()
	hidden := m.hiddenRep(x)
	// Hidden second-moment matrix over the context sample.
	hiddens := tensor.NewMatrix(contexts.Rows, len(hidden))
	for i := 0; i < contexts.Rows; i++ {
		copy(hiddens.Row(i), m.hiddenRep(contexts.Row(i)))
	}
	cov := tensor.CovarianceOfRows(hiddens, 1e-3)
	u, err := tensor.Solve(cov, hidden)
	if err != nil {
		return EditResult{}, fmt.Errorf("nn: edit covariance solve: %w", err)
	}
	hu := hidden.Dot(u)
	if hu <= 0 {
		return EditResult{}, fmt.Errorf("nn: degenerate edit direction (h·u = %v)", hu)
	}
	logits := tensor.NewVector(m.OutputDim())
	m.W[L-1].MatVec(logits, hidden)
	logits.AddScaled(1, m.B[L-1])
	if logits.ArgMax() == target {
		return EditResult{Succeeded: true}, nil
	}
	need := logits[logits.ArgMax()] - logits[target] + margin
	delta := tensor.NewVector(m.OutputDim())
	delta[target] = need
	m.W[L-1].AddOuter(1/hu, delta, u)
	return EditResult{Succeeded: true, DeltaNorm: need * u.Norm() / hu}, nil
}

// hiddenRep returns the activation vector feeding the final layer for input
// x (or x itself for a single-layer model).
func (m *MLP) hiddenRep(x tensor.Vector) tensor.Vector {
	hidden := x
	for l := 0; l < m.LayerCount()-1; l++ {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, hidden)
		next.AddScaled(1, m.B[l])
		m.activate(next)
		hidden = next
	}
	return hidden
}

// Stitch builds a hybrid model from two same-architecture parents: layers
// [0, cut) come from a and layers [cut, L) from b (the paper's "model
// stitching" transformation). cut must satisfy 0 < cut < LayerCount.
func Stitch(a, b *MLP, cut int) (*MLP, error) {
	if !a.SameArchitecture(b) {
		return nil, fmt.Errorf("nn: stitch requires same architecture, got %s vs %s",
			a.ArchString(), b.ArchString())
	}
	if cut <= 0 || cut >= a.LayerCount() {
		return nil, fmt.Errorf("nn: stitch cut %d out of range (0,%d)", cut, a.LayerCount())
	}
	out := a.Clone()
	for l := cut; l < b.LayerCount(); l++ {
		out.W[l] = b.W[l].Clone()
		out.B[l] = b.B[l].Clone()
	}
	return out, nil
}

package nn

import (
	"math"
	"testing"

	"modellake/internal/data"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func testDataset(t *testing.T, name string, dim, classes, n int, seed uint64) *data.Dataset {
	t.Helper()
	d := data.NewDomain(name, dim, classes, seed)
	return d.Sample(name+"/v1", n, 0.4, xrand.New(seed+1))
}

func TestNewMLPShapes(t *testing.T) {
	m := NewMLP([]int{4, 8, 3}, ReLU, xrand.New(1))
	if m.InputDim() != 4 || m.OutputDim() != 3 || m.LayerCount() != 2 {
		t.Fatalf("bad shape: in=%d out=%d layers=%d", m.InputDim(), m.OutputDim(), m.LayerCount())
	}
	if got, want := m.NumParams(), 4*8+8+8*3+3; got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if m.ArchString() != "mlp:4-8-3:relu" {
		t.Fatalf("ArchString = %q", m.ArchString())
	}
}

func TestNewMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP([]int{4}, ReLU, xrand.New(1))
}

func TestSoftmaxSumsToOne(t *testing.T) {
	v := tensor.Vector{1, 2, 3, 1000} // tests numerical stability
	Softmax(v)
	sum := v.Sum()
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if v[3] < 0.99 {
		t.Fatalf("softmax should saturate at the large logit: %v", v)
	}
}

func TestProbsIsDistribution(t *testing.T) {
	m := NewMLP([]int{4, 6, 3}, Tanh, xrand.New(2))
	p := m.Probs(tensor.Vector{1, -1, 0.5, 2})
	sum := 0.0
	for _, x := range p {
		if x < 0 || x > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum = %v", sum)
	}
}

// Gradient check: backprop gradients must match central finite differences.
func TestBackwardMatchesFiniteDifferences(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh} {
		m := NewMLP([]int{3, 5, 4, 2}, act, xrand.New(3))
		x := tensor.Vector{0.3, -0.7, 1.1}
		y := 1
		g := NewGrads(m)
		m.Backward(x, y, g)
		const eps = 1e-6
		check := func(params []float64, grads []float64, label string) {
			for i := range params {
				orig := params[i]
				params[i] = orig + eps
				lossPlus := m.ExampleLoss(x, y)
				params[i] = orig - eps
				lossMinus := m.ExampleLoss(x, y)
				params[i] = orig
				numeric := (lossPlus - lossMinus) / (2 * eps)
				if math.Abs(numeric-grads[i]) > 1e-4 {
					t.Fatalf("%s act=%v grad[%d]: analytic %v vs numeric %v",
						label, act, i, grads[i], numeric)
				}
			}
		}
		for l := range m.W {
			check(m.W[l].Data, g.W[l].Data, "W")
			check(m.B[l], g.B[l], "B")
		}
	}
}

func TestTrainConverges(t *testing.T) {
	ds := testDataset(t, "train", 8, 3, 300, 10)
	m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(4))
	before := m.Accuracy(ds)
	if _, err := Train(m, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	after := m.Accuracy(ds)
	if after < 0.95 {
		t.Fatalf("accuracy after training = %v (before %v), want >= 0.95", after, before)
	}
}

func TestTrainAdamConverges(t *testing.T) {
	ds := testDataset(t, "adam", 8, 3, 300, 11)
	m := NewMLP([]int{8, 16, 3}, Tanh, xrand.New(4))
	cfg := TrainConfig{Epochs: 20, BatchSize: 16, LR: 0.01, Optimizer: "adam", Seed: 2}
	if _, err := Train(m, ds, cfg); err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(ds); acc < 0.95 {
		t.Fatalf("adam accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainDeterminism(t *testing.T) {
	ds := testDataset(t, "det", 6, 2, 100, 12)
	cfg := DefaultTrainConfig()
	m1 := NewMLP([]int{6, 10, 2}, ReLU, xrand.New(5))
	m2 := NewMLP([]int{6, 10, 2}, ReLU, xrand.New(5))
	if _, err := Train(m1, ds, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m2, ds, cfg); err != nil {
		t.Fatal(err)
	}
	d, err := WeightDistance(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("same seed training diverged: distance %v", d)
	}
}

func TestTrainErrors(t *testing.T) {
	m := NewMLP([]int{6, 10, 2}, ReLU, xrand.New(5))
	empty := &data.Dataset{X: tensor.NewMatrix(0, 6), NumClasses: 2, ID: "empty"}
	if _, err := Train(m, empty, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error on empty dataset")
	}
	bad := testDataset(t, "bad", 5, 2, 10, 1)
	if _, err := Train(m, bad, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error on dimension mismatch")
	}
	ds := testDataset(t, "opt", 6, 2, 10, 1)
	if _, err := Train(m, ds, TrainConfig{Epochs: 1, LR: 0.1, Optimizer: "magic"}); err == nil {
		t.Fatal("expected error on unknown optimizer")
	}
}

func TestFineTuningShiftsWeights(t *testing.T) {
	base := NewMLP([]int{8, 12, 3}, ReLU, xrand.New(6))
	dsA := testDataset(t, "ft-a", 8, 3, 200, 20)
	if _, err := Train(base, dsA, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	child := base.Clone()
	dsB := testDataset(t, "ft-b", 8, 3, 200, 21)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	if _, err := Train(child, dsB, cfg); err != nil {
		t.Fatal(err)
	}
	d, err := WeightDistance(base, child)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Fatal("fine-tuning did not move weights")
	}
	// Fine-tuned child should now fit its domain better than the base does.
	if child.Accuracy(dsB) <= base.Accuracy(dsB) {
		t.Fatalf("fine-tuning did not improve target accuracy: %v vs %v",
			child.Accuracy(dsB), base.Accuracy(dsB))
	}
}

func TestWeightDistanceArchMismatch(t *testing.T) {
	a := NewMLP([]int{4, 5, 2}, ReLU, xrand.New(1))
	b := NewMLP([]int{4, 6, 2}, ReLU, xrand.New(1))
	if _, err := WeightDistance(a, b); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, ReLU, xrand.New(7))
	c := m.Clone()
	c.W[0].Data[0] += 100
	if m.W[0].Data[0] == c.W[0].Data[0] {
		t.Fatal("Clone shares weight storage")
	}
}

func TestFlattenWeightsLength(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, ReLU, xrand.New(7))
	if got := len(m.FlattenWeights()); got != m.NumParams() {
		t.Fatalf("flatten length %d != NumParams %d", got, m.NumParams())
	}
}

func TestLoRAStartsAsNoOp(t *testing.T) {
	m := NewMLP([]int{6, 8, 3}, ReLU, xrand.New(8))
	l, err := NewLoRA(m, 0, 2, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	merged := l.Merge(m)
	d, err := WeightDistance(m, merged)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("freshly initialized LoRA changed weights by %v", d)
	}
}

func TestLoRAInvalid(t *testing.T) {
	m := NewMLP([]int{6, 8, 3}, ReLU, xrand.New(8))
	if _, err := NewLoRA(m, 5, 2, xrand.New(1)); err == nil {
		t.Fatal("expected layer-range error")
	}
	if _, err := NewLoRA(m, 0, 100, xrand.New(1)); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestTrainLoRAImprovesAndStaysLowRank(t *testing.T) {
	base := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(10))
	dsA := testDataset(t, "lora-a", 8, 3, 300, 30)
	if _, err := Train(base, dsA, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	dsB := testDataset(t, "lora-b", 8, 3, 300, 31)
	l, err := NewLoRA(base, 0, 2, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 20
	if _, err := TrainLoRA(base, l, dsB, cfg); err != nil {
		t.Fatal(err)
	}
	merged := l.Merge(base)
	if merged.Accuracy(dsB) <= base.Accuracy(dsB) {
		t.Fatalf("LoRA did not improve target accuracy: %v vs %v",
			merged.Accuracy(dsB), base.Accuracy(dsB))
	}
	// Non-adapted layers are untouched.
	if tensor.Sub(merged.W[1], base.W[1]).FrobeniusNorm() != 0 {
		t.Fatal("LoRA modified a frozen layer")
	}
	// Delta of the adapted layer has rank <= 2.
	delta := tensor.Sub(merged.W[0], base.W[0])
	sv := tensor.TopSingularValues(delta, 4, 60, xrand.New(12))
	if r := tensor.EffectiveRank(sv, 1e-6); r > 2 {
		t.Fatalf("LoRA delta rank = %d, want <= 2 (sv=%v)", r, sv)
	}
}

func TestEditAssociationFlipsOnlyTarget(t *testing.T) {
	ds := testDataset(t, "edit", 8, 3, 300, 40)
	m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(13))
	if _, err := Train(m, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	x, y := ds.Example(0)
	target := (y + 1) % 3
	edited := m.Clone()
	res, err := EditAssociationWithContext(edited, x, target, 0.1, ds.X)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatal("edit did not flip the prediction")
	}
	if edited.Predict(x) != target {
		t.Fatal("edited model does not predict the target")
	}
	// Only the last layer changed.
	if tensor.Sub(edited.W[0], m.W[0]).FrobeniusNorm() != 0 {
		t.Fatal("edit modified a non-final layer")
	}
	// The delta is (near) rank one.
	delta := tensor.Sub(edited.W[1], m.W[1])
	sv := tensor.TopSingularValues(delta, 3, 60, xrand.New(14))
	if r := tensor.EffectiveRank(sv, 1e-6); r > 1 {
		t.Fatalf("edit delta rank = %d, want 1", r)
	}
	// Overall accuracy should not collapse (locality).
	if edited.Accuracy(ds) < m.Accuracy(ds)-0.1 {
		t.Fatalf("edit destroyed the model: %v -> %v", m.Accuracy(ds), edited.Accuracy(ds))
	}
}

func TestEditAssociationErrors(t *testing.T) {
	m := NewMLP([]int{4, 6, 2}, ReLU, xrand.New(1))
	if _, err := EditAssociation(m, tensor.Vector{1, 2, 3, 4}, 9, 0.1); err == nil {
		t.Fatal("expected target range error")
	}
	if _, err := EditAssociation(m, tensor.Vector{1}, 0, 0.1); err == nil {
		t.Fatal("expected input dim error")
	}
}

func TestStitch(t *testing.T) {
	a := NewMLP([]int{4, 6, 6, 2}, ReLU, xrand.New(15))
	b := NewMLP([]int{4, 6, 6, 2}, ReLU, xrand.New(16))
	s, err := Stitch(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Sub(s.W[0], a.W[0]).FrobeniusNorm() != 0 {
		t.Fatal("stitched model lost parent A's early layers")
	}
	if tensor.Sub(s.W[2], b.W[2]).FrobeniusNorm() != 0 {
		t.Fatal("stitched model lost parent B's late layers")
	}
	if _, err := Stitch(a, b, 0); err == nil {
		t.Fatal("expected cut range error")
	}
	c := NewMLP([]int{4, 5, 2}, ReLU, xrand.New(17))
	if _, err := Stitch(a, c, 1); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}

func TestGradVectorLength(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, ReLU, xrand.New(18))
	g := m.GradVector(tensor.Vector{1, 0, -1}, 0)
	if len(g) != m.NumParams() {
		t.Fatalf("grad vector length %d != NumParams %d", len(g), m.NumParams())
	}
}

func TestMLPEncodeRoundTrip(t *testing.T) {
	m := NewMLP([]int{5, 7, 3}, Tanh, xrand.New(19))
	b, err := EncodeMLP(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMLP(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameArchitecture(m) {
		t.Fatal("round trip changed architecture")
	}
	d, err := WeightDistance(m, got)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("round trip changed weights by %v", d)
	}
}

func TestDecodeMLPCorrupt(t *testing.T) {
	m := NewMLP([]int{5, 7, 3}, ReLU, xrand.New(19))
	b, err := EncodeMLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMLP(b[:10]); err == nil {
		t.Fatal("expected error on truncated model")
	}
	b[0] ^= 0xff
	if _, err := DecodeMLP(b); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestParseActivation(t *testing.T) {
	for _, a := range []Activation{ReLU, Tanh} {
		got, err := ParseActivation(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip of %v failed: %v %v", a, got, err)
		}
	}
	if _, err := ParseActivation("swish"); err == nil {
		t.Fatal("expected error for unknown activation")
	}
}

func BenchmarkBackward(b *testing.B) {
	m := NewMLP([]int{16, 32, 8}, ReLU, xrand.New(1))
	g := NewGrads(m)
	x := make(tensor.Vector, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Backward(x, 3, g)
	}
}

func BenchmarkTrainSmallModel(b *testing.B) {
	d := data.NewDomain("bench", 8, 3, 1)
	ds := d.Sample("bench/v1", 200, 0.4, xrand.New(2))
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(uint64(i)))
		if _, err := Train(m, ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInputGradientMatchesFiniteDifferences(t *testing.T) {
	m := NewMLP([]int{4, 6, 3}, Tanh, xrand.New(60))
	x := tensor.Vector{0.2, -0.4, 0.9, 0.1}
	y := 2
	g := m.InputGradient(x, y)
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		plus := m.ExampleLoss(x, y)
		x[i] = orig - eps
		minus := m.ExampleLoss(x, y)
		x[i] = orig
		numeric := (plus - minus) / (2 * eps)
		if math.Abs(numeric-g[i]) > 1e-5 {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, g[i], numeric)
		}
	}
}

func TestHiddenActivations(t *testing.T) {
	m := NewMLP([]int{4, 6, 5, 3}, ReLU, xrand.New(61))
	acts := m.HiddenActivations(tensor.Vector{1, -1, 0.5, 2})
	if len(acts) != 2 {
		t.Fatalf("got %d hidden layers, want 2", len(acts))
	}
	if len(acts[0]) != 6 || len(acts[1]) != 5 {
		t.Fatalf("hidden sizes %d/%d", len(acts[0]), len(acts[1]))
	}
	for _, a := range acts {
		for _, v := range a {
			if v < 0 {
				t.Fatal("ReLU activations must be non-negative")
			}
		}
	}
}

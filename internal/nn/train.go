package nn

import (
	"fmt"
	"math"

	"modellake/internal/data"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Grads accumulates parameter gradients with the same shapes as an MLP.
type Grads struct {
	W []tensor.Matrix
	B []tensor.Vector
}

// NewGrads allocates zero gradients matching m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{W: make([]tensor.Matrix, len(m.W)), B: make([]tensor.Vector, len(m.B))}
	for l := range m.W {
		g.W[l] = tensor.NewMatrix(m.W[l].Rows, m.W[l].Cols)
		g.B[l] = tensor.NewVector(len(m.B[l]))
	}
	return g
}

// Zero clears all accumulated gradients.
func (g *Grads) Zero() {
	for l := range g.W {
		g.W[l].Zero()
		for i := range g.B[l] {
			g.B[l][i] = 0
		}
	}
}

// Flatten returns the gradients as one vector in FlattenWeights order.
func (g *Grads) Flatten() tensor.Vector {
	n := 0
	for l := range g.W {
		n += len(g.W[l].Data) + len(g.B[l])
	}
	out := make(tensor.Vector, 0, n)
	for l := range g.W {
		out = append(out, g.W[l].Data...)
		out = append(out, g.B[l]...)
	}
	return out
}

// Backward accumulates the gradient of the cross-entropy loss at (x, y) into
// g and returns the example loss. The model itself is not modified.
func (m *MLP) Backward(x tensor.Vector, y int, g *Grads) float64 {
	L := len(m.W)
	// Forward pass keeping all activations. acts[0] = x, acts[l] is the
	// activated output of layer l-1 (or the raw logits for the final layer).
	acts := make([]tensor.Vector, L+1)
	acts[0] = x
	for l := 0; l < L; l++ {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, acts[l])
		next.AddScaled(1, m.B[l])
		if l < L-1 {
			m.activate(next)
		}
		acts[l+1] = next
	}
	probs := acts[L].Clone()
	Softmax(probs)
	loss := CrossEntropy(probs, y)

	// delta = dL/dz for the output layer: probs - onehot(y).
	delta := probs
	delta[y] -= 1

	for l := L - 1; l >= 0; l-- {
		g.W[l].AddOuter(1, delta, acts[l])
		g.B[l].AddScaled(1, delta)
		if l == 0 {
			break
		}
		prev := tensor.NewVector(m.Sizes[l])
		m.W[l].MatVecT(prev, delta)
		dphi := tensor.NewVector(m.Sizes[l])
		m.activateGrad(acts[l], dphi)
		for i := range prev {
			prev[i] *= dphi[i]
		}
		delta = prev
	}
	return loss
}

// GradVector returns the flattened gradient of the loss at a single example —
// the quantity dotted by gradient-influence attribution.
func (m *MLP) GradVector(x tensor.Vector, y int) tensor.Vector {
	g := NewGrads(m)
	m.Backward(x, y, g)
	return g.Flatten()
}

// InputGradient returns ∂L/∂x for the cross-entropy loss at (x, y) — the
// saliency map used by sensitivity-analysis attribution.
func (m *MLP) InputGradient(x tensor.Vector, y int) tensor.Vector {
	L := len(m.W)
	acts := make([]tensor.Vector, L+1)
	acts[0] = x
	for l := 0; l < L; l++ {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, acts[l])
		next.AddScaled(1, m.B[l])
		if l < L-1 {
			m.activate(next)
		}
		acts[l+1] = next
	}
	probs := acts[L].Clone()
	Softmax(probs)
	delta := probs
	delta[y] -= 1
	for l := L - 1; l >= 0; l-- {
		prev := tensor.NewVector(m.Sizes[l])
		m.W[l].MatVecT(prev, delta)
		if l > 0 {
			dphi := tensor.NewVector(m.Sizes[l])
			m.activateGrad(acts[l], dphi)
			for i := range prev {
				prev[i] *= dphi[i]
			}
		}
		delta = prev
	}
	return delta
}

// ForwardFromHidden resumes the forward pass from an (possibly edited)
// activation vector at hidden layer `layer` (0-based, as returned by
// HiddenActivations) and returns the resulting logits. It is the hook for
// representation-engineering interventions: read an activation, steer it,
// and observe the behavioural consequence.
func (m *MLP) ForwardFromHidden(layer int, h tensor.Vector) (tensor.Vector, error) {
	if layer < 0 || layer >= m.LayerCount()-1 {
		return nil, fmt.Errorf("nn: hidden layer %d out of range [0,%d)", layer, m.LayerCount()-1)
	}
	if len(h) != m.Sizes[layer+1] {
		return nil, fmt.Errorf("nn: activation length %d != layer width %d", len(h), m.Sizes[layer+1])
	}
	cur := h
	for l := layer + 1; l < m.LayerCount(); l++ {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, cur)
		next.AddScaled(1, m.B[l])
		if l < m.LayerCount()-1 {
			m.activate(next)
		}
		cur = next
	}
	return cur, nil
}

// HiddenActivations returns the activation vector after each hidden layer
// for input x — the representations probed by interpretability analyses.
func (m *MLP) HiddenActivations(x tensor.Vector) []tensor.Vector {
	out := make([]tensor.Vector, 0, m.LayerCount()-1)
	cur := x
	for l := 0; l < m.LayerCount()-1; l++ {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, cur)
		next.AddScaled(1, m.B[l])
		m.activate(next)
		out = append(out, next)
		cur = next
	}
	return out
}

// Optimizer applies accumulated (mean) gradients to a model.
type Optimizer interface {
	// Step applies the gradient g (already averaged over the batch) to m.
	Step(m *MLP, g *Grads)
	// Name identifies the optimizer for history records.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      *Grads
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(m *MLP, g *Grads) {
	if s.Momentum == 0 {
		for l := range m.W {
			m.W[l].AddScaled(-s.LR, g.W[l])
			m.B[l].AddScaled(-s.LR, g.B[l])
		}
		return
	}
	if s.vel == nil {
		s.vel = NewGrads(m)
	}
	for l := range m.W {
		s.vel.W[l].Scale(s.Momentum)
		s.vel.W[l].AddScaled(1, g.W[l])
		s.vel.B[l].Scale(s.Momentum)
		s.vel.B[l].AddScaled(1, g.B[l])
		m.W[l].AddScaled(-s.LR, s.vel.W[l])
		m.B[l].AddScaled(-s.LR, s.vel.B[l])
	}
}

// Adam is the Adam optimizer with standard defaults.
type Adam struct {
	LR             float64
	Beta1, Beta2   float64
	Eps            float64
	t              int
	mMoments, vMom *Grads
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(m *MLP, g *Grads) {
	if a.Beta1 == 0 {
		a.Beta1 = 0.9
	}
	if a.Beta2 == 0 {
		a.Beta2 = 0.999
	}
	if a.Eps == 0 {
		a.Eps = 1e-8
	}
	if a.mMoments == nil {
		a.mMoments = NewGrads(m)
		a.vMom = NewGrads(m)
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	update := func(p, grad, mm, vv []float64) {
		for i := range p {
			mm[i] = a.Beta1*mm[i] + (1-a.Beta1)*grad[i]
			vv[i] = a.Beta2*vv[i] + (1-a.Beta2)*grad[i]*grad[i]
			mhat := mm[i] / bc1
			vhat := vv[i] / bc2
			p[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
	for l := range m.W {
		update(m.W[l].Data, g.W[l].Data, a.mMoments.W[l].Data, a.vMom.W[l].Data)
		update(m.B[l], g.B[l], a.mMoments.B[l], a.vMom.B[l])
	}
}

// TrainConfig describes a training run — together with the dataset ID it is
// the model's History (D, A) in the paper's terms.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	L2        float64 // weight decay coefficient
	Momentum  float64
	Optimizer string // "sgd" (default) or "adam"
	Seed      uint64 // shuffling seed
}

// DefaultTrainConfig returns a configuration that trains small models to high
// accuracy on the synthetic domains in milliseconds.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 16, LR: 0.05, Seed: 1}
}

func (c TrainConfig) optimizer() (Optimizer, error) {
	switch c.Optimizer {
	case "", "sgd":
		return &SGD{LR: c.LR, Momentum: c.Momentum}, nil
	case "adam":
		return &Adam{LR: c.LR}, nil
	}
	return nil, fmt.Errorf("nn: unknown optimizer %q", c.Optimizer)
}

// Train runs mini-batch training of m on ds in place and returns the final
// mean training loss. Training is fully deterministic given cfg.Seed.
func Train(m *MLP, ds *data.Dataset, cfg TrainConfig) (float64, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("nn: empty dataset %q", ds.ID)
	}
	if ds.Dim() != m.InputDim() {
		return 0, fmt.Errorf("nn: dataset dim %d != model input %d", ds.Dim(), m.InputDim())
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	opt, err := cfg.optimizer()
	if err != nil {
		return 0, err
	}
	rng := xrand.New(cfg.Seed)
	g := NewGrads(m)
	lastLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(ds.Len())
		total := 0.0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			g.Zero()
			for _, idx := range perm[start:end] {
				x, y := ds.Example(idx)
				total += m.Backward(x, y, g)
			}
			inv := 1.0 / float64(end-start)
			for l := range g.W {
				g.W[l].Scale(inv)
				g.B[l].Scale(inv)
				if cfg.L2 > 0 {
					g.W[l].AddScaled(cfg.L2, m.W[l])
				}
			}
			opt.Step(m, g)
		}
		lastLoss = total / float64(ds.Len())
	}
	return lastLoss, nil
}

// Loss returns the mean cross-entropy of m over ds.
func (m *MLP) Loss(ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	total := 0.0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		total += m.ExampleLoss(x, y)
	}
	return total / float64(ds.Len())
}

// Accuracy returns the fraction of ds the model classifies correctly.
func (m *MLP) Accuracy(ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		x, y := ds.Example(i)
		if m.Predict(x) == y {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

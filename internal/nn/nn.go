// Package nn implements the from-scratch neural-network substrate underlying
// every model in the lake: multi-layer perceptrons with deterministic
// initialization and training, per-example gradients (for attribution),
// LoRA adapters, rank-one model editing, model stitching, and a tiny bigram
// language model (for watermarking experiments).
//
// Models here expose exactly the five-tuple the Model Lakes paper defines:
// the training data and algorithm are the History, the layer sizes are the
// architecture f*, the weight matrices are θ, and Probs/Predict realize the
// observable behaviour p_θ.
package nn

import (
	"fmt"
	"math"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Activation selects the hidden-layer nonlinearity of an MLP.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
)

// String returns the conventional lowercase name of the activation.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// ParseActivation is the inverse of Activation.String.
func ParseActivation(s string) (Activation, error) {
	switch s {
	case "relu":
		return ReLU, nil
	case "tanh":
		return Tanh, nil
	}
	return 0, fmt.Errorf("nn: unknown activation %q", s)
}

// MLP is a feed-forward classifier: Dense layers with a hidden activation and
// raw logits at the output (softmax is applied by the loss and by Probs).
type MLP struct {
	Sizes []int // [in, hidden..., out]
	Act   Activation
	W     []tensor.Matrix // W[l] has shape Sizes[l+1] x Sizes[l]
	B     []tensor.Vector // B[l] has length Sizes[l+1]
}

// NewMLP builds an MLP with Xavier/Glorot-scaled random weights drawn from
// rng. sizes must contain at least an input and an output dimension.
func NewMLP(sizes []int, act Activation, rng *xrand.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer size in %v", sizes))
		}
	}
	m := &MLP{
		Sizes: append([]int(nil), sizes...),
		Act:   act,
		W:     make([]tensor.Matrix, len(sizes)-1),
		B:     make([]tensor.Vector, len(sizes)-1),
	}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		m.W[l] = tensor.NewMatrix(out, in)
		scale := math.Sqrt(2.0 / float64(in+out))
		for i := range m.W[l].Data {
			m.W[l].Data[i] = rng.NormFloat64() * scale
		}
		m.B[l] = tensor.NewVector(out)
	}
	return m
}

// Clone returns a deep copy of the model.
func (m *MLP) Clone() *MLP {
	out := &MLP{
		Sizes: append([]int(nil), m.Sizes...),
		Act:   m.Act,
		W:     make([]tensor.Matrix, len(m.W)),
		B:     make([]tensor.Vector, len(m.B)),
	}
	for l := range m.W {
		out.W[l] = m.W[l].Clone()
		out.B[l] = m.B[l].Clone()
	}
	return out
}

// LayerCount returns the number of weight layers.
func (m *MLP) LayerCount() int { return len(m.W) }

// InputDim returns the expected input dimensionality.
func (m *MLP) InputDim() int { return m.Sizes[0] }

// OutputDim returns the number of output classes.
func (m *MLP) OutputDim() int { return m.Sizes[len(m.Sizes)-1] }

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l].Data) + len(m.B[l])
	}
	return n
}

// SameArchitecture reports whether two models share layer sizes and
// activation (the paper's f*).
func (m *MLP) SameArchitecture(o *MLP) bool {
	if m.Act != o.Act || len(m.Sizes) != len(o.Sizes) {
		return false
	}
	for i := range m.Sizes {
		if m.Sizes[i] != o.Sizes[i] {
			return false
		}
	}
	return true
}

// ArchString returns a compact architecture descriptor, e.g.
// "mlp:16-32-4:relu".
func (m *MLP) ArchString() string {
	s := "mlp:"
	for i, d := range m.Sizes {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprint(d)
	}
	return s + ":" + m.Act.String()
}

func (m *MLP) activate(v tensor.Vector) {
	switch m.Act {
	case ReLU:
		for i, x := range v {
			if x < 0 {
				v[i] = 0
			}
		}
	case Tanh:
		for i, x := range v {
			v[i] = math.Tanh(x)
		}
	}
}

// activateGrad writes dφ/dz given the *activated* values a into dst (for
// ReLU the derivative is 1 where a>0; for Tanh it is 1-a²).
func (m *MLP) activateGrad(a tensor.Vector, dst tensor.Vector) {
	switch m.Act {
	case ReLU:
		for i, x := range a {
			if x > 0 {
				dst[i] = 1
			} else {
				dst[i] = 0
			}
		}
	case Tanh:
		for i, x := range a {
			dst[i] = 1 - x*x
		}
	}
}

// Logits computes the raw output scores for input x.
func (m *MLP) Logits(x tensor.Vector) tensor.Vector {
	cur := x
	for l := range m.W {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, cur)
		next.AddScaled(1, m.B[l])
		if l < len(m.W)-1 {
			m.activate(next)
		}
		cur = next
	}
	return cur
}

// Probs returns the softmax class distribution for input x — the model's
// observable behaviour p_θ(y|x).
func (m *MLP) Probs(x tensor.Vector) tensor.Vector {
	logits := m.Logits(x)
	Softmax(logits)
	return logits
}

// Predict returns the argmax class for input x.
func (m *MLP) Predict(x tensor.Vector) int { return m.Logits(x).ArgMax() }

// Softmax converts logits to probabilities in place, numerically stably.
func Softmax(v tensor.Vector) {
	if len(v) == 0 {
		return
	}
	max := v[0]
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - max)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// CrossEntropy returns -log p[y] with clamping to avoid infinities.
func CrossEntropy(probs tensor.Vector, y int) float64 {
	p := probs[y]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// ExampleLoss returns the cross-entropy loss of the model on one example.
func (m *MLP) ExampleLoss(x tensor.Vector, y int) float64 {
	return CrossEntropy(m.Probs(x), y)
}

// FlattenWeights returns all parameters (weights then biases, layer by
// layer) as a single vector — the raw θ consumed by weight-space embedders.
func (m *MLP) FlattenWeights() tensor.Vector {
	out := make(tensor.Vector, 0, m.NumParams())
	for l := range m.W {
		out = append(out, m.W[l].Data...)
		out = append(out, m.B[l]...)
	}
	return out
}

// WeightDistance returns the Euclidean distance between the flattened
// parameters of two same-architecture models, or an error if architectures
// differ.
func WeightDistance(a, b *MLP) (float64, error) {
	if !a.SameArchitecture(b) {
		return 0, fmt.Errorf("nn: architecture mismatch %s vs %s", a.ArchString(), b.ArchString())
	}
	return tensor.L2Distance(a.FlattenWeights(), b.FlattenWeights()), nil
}

package nn

import (
	"math"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func TestBigramSampleRange(t *testing.T) {
	lm := NewBigramLM(20, xrand.New(1))
	toks := lm.Sample(xrand.New(2), 0, 500, 1.0, nil)
	if len(toks) != 500 {
		t.Fatalf("sampled %d tokens, want 500", len(toks))
	}
	for _, tok := range toks {
		if tok < 0 || tok >= 20 {
			t.Fatalf("token out of range: %d", tok)
		}
	}
}

func TestBigramBiasShiftsDistribution(t *testing.T) {
	lm := NewBigramLM(10, xrand.New(3))
	// Heavily bias toward token 7.
	bias := func(prev int, logits tensor.Vector) { logits[7] += 50 }
	toks := lm.Sample(xrand.New(4), 0, 200, 1.0, bias)
	count := 0
	for _, tok := range toks {
		if tok == 7 {
			count++
		}
	}
	if count < 190 {
		t.Fatalf("bias ineffective: only %d/200 tokens are 7", count)
	}
}

func TestTrainBigramCountsLearnsTransitions(t *testing.T) {
	// Corpus where 0 is always followed by 1.
	corpus := [][]int{{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}}
	lm, err := TrainBigramCounts(corpus, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	logits := lm.NextLogits(0)
	if logits.ArgMax() != 1 {
		t.Fatalf("trained bigram does not prefer 1 after 0: %v", logits)
	}
}

func TestTrainBigramCountsErrors(t *testing.T) {
	if _, err := TrainBigramCounts(nil, 1, 0.1); err == nil {
		t.Fatal("expected vocabulary error")
	}
	if _, err := TrainBigramCounts([][]int{{0, 99}}, 3, 0.1); err == nil {
		t.Fatal("expected token range error")
	}
}

func TestSequenceNLL(t *testing.T) {
	corpus := [][]int{{0, 1, 0, 1, 0, 1, 0, 1}}
	lm, err := TrainBigramCounts(corpus, 2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	likely := lm.SequenceNLL([]int{0, 1, 0, 1})
	unlikely := lm.SequenceNLL([]int{0, 0, 0, 0})
	if likely >= unlikely {
		t.Fatalf("NLL ordering wrong: likely %v >= unlikely %v", likely, unlikely)
	}
	if lm.SequenceNLL([]int{5}) != 0 {
		t.Fatal("single-token NLL should be 0")
	}
}

func TestTemperatureSharpensSampling(t *testing.T) {
	lm := NewBigramLM(5, xrand.New(9))
	// At very low temperature sampling should be (almost) deterministic:
	// always the argmax successor.
	toks := lm.Sample(xrand.New(10), 0, 100, 0.001, nil)
	prev := 0
	for _, tok := range toks {
		want := lm.NextLogits(prev).ArgMax()
		if tok != want {
			t.Fatalf("low-temperature sample deviated from argmax: got %d want %d", tok, want)
		}
		prev = tok
	}
}

func TestSampleZeroTemperatureDefaults(t *testing.T) {
	lm := NewBigramLM(5, xrand.New(9))
	toks := lm.Sample(xrand.New(10), 0, 10, 0, nil)
	if len(toks) != 10 {
		t.Fatal("temperature 0 should default to 1, not fail")
	}
}

func TestBigramPerplexityFinite(t *testing.T) {
	lm := NewBigramLM(8, xrand.New(11))
	seq := lm.Sample(xrand.New(12), 0, 64, 1.0, nil)
	nll := lm.SequenceNLL(append([]int{0}, seq...))
	if math.IsNaN(nll) || math.IsInf(nll, 0) || nll <= 0 {
		t.Fatalf("NLL = %v, want finite positive", nll)
	}
}

package nn

import (
	"fmt"
	"math"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// BigramLM is a tiny generative language model over an integer vocabulary:
// next-token logits are a learned function of the previous token only. It is
// the generative substrate for the watermarking/citation experiments, where
// only the sampling distribution matters, not linguistic quality.
type BigramLM struct {
	V      int           // vocabulary size
	Logits tensor.Matrix // V x V; row p gives logits over the next token
}

// NewBigramLM returns a model with small random logits (a "pre-trained"
// generative model with nontrivial entropy).
func NewBigramLM(v int, rng *xrand.RNG) *BigramLM {
	if v <= 1 {
		panic(fmt.Sprintf("nn: bigram vocabulary %d too small", v))
	}
	lm := &BigramLM{V: v, Logits: tensor.NewMatrix(v, v)}
	for i := range lm.Logits.Data {
		lm.Logits.Data[i] = rng.NormFloat64() * 0.5
	}
	return lm
}

// TrainBigramCounts fits the model to a token corpus by add-alpha-smoothed
// count estimation: logits are log(count + alpha).
func TrainBigramCounts(corpus [][]int, v int, alpha float64) (*BigramLM, error) {
	if v <= 1 {
		return nil, fmt.Errorf("nn: bigram vocabulary %d too small", v)
	}
	if alpha <= 0 {
		alpha = 0.1
	}
	counts := tensor.NewMatrix(v, v)
	for _, seq := range corpus {
		for i := 0; i+1 < len(seq); i++ {
			a, b := seq[i], seq[i+1]
			if a < 0 || a >= v || b < 0 || b >= v {
				return nil, fmt.Errorf("nn: token out of range in corpus: %d,%d", a, b)
			}
			counts.Set(a, b, counts.At(a, b)+1)
		}
	}
	lm := &BigramLM{V: v, Logits: tensor.NewMatrix(v, v)}
	for i := range counts.Data {
		lm.Logits.Data[i] = math.Log(counts.Data[i] + alpha)
	}
	return lm, nil
}

// NextLogits returns a copy of the logits over the token following prev.
func (lm *BigramLM) NextLogits(prev int) tensor.Vector {
	return lm.Logits.Row(prev).Clone()
}

// LogitBias mutates next-token logits before sampling; the watermarker
// installs its green-list boost through this hook.
type LogitBias func(prev int, logits tensor.Vector)

// Sample generates n tokens starting after the given start token, at the
// given softmax temperature. If bias is non-nil it is applied to the logits
// of every step before sampling.
func (lm *BigramLM) Sample(rng *xrand.RNG, start, n int, temperature float64, bias LogitBias) []int {
	if temperature <= 0 {
		temperature = 1
	}
	out := make([]int, 0, n)
	prev := start
	probs := tensor.NewVector(lm.V)
	for i := 0; i < n; i++ {
		logits := lm.NextLogits(prev)
		if bias != nil {
			bias(prev, logits)
		}
		for j, v := range logits {
			probs[j] = v / temperature
		}
		Softmax(probs)
		next := rng.Weighted(probs)
		out = append(out, next)
		prev = next
	}
	return out
}

// SequenceNLL returns the average negative log-likelihood per token the model
// assigns to seq (conditioning each token on its predecessor); exp of this is
// perplexity.
func (lm *BigramLM) SequenceNLL(seq []int) float64 {
	if len(seq) < 2 {
		return 0
	}
	total := 0.0
	probs := tensor.NewVector(lm.V)
	for i := 0; i+1 < len(seq); i++ {
		copy(probs, lm.Logits.Row(seq[i]))
		Softmax(probs)
		total += CrossEntropy(probs, seq[i+1])
	}
	return total / float64(len(seq)-1)
}

package nn

import (
	"math"
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func TestPreferenceTuneShiftsPreferences(t *testing.T) {
	ds := testDataset(t, "pref", 8, 3, 300, 70)
	m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(71))
	if _, err := Train(m, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	// Preferences: on a held-out probe region, prefer class 2 over whatever
	// the model currently says.
	rng := xrand.New(72)
	var prefs []Preference
	for i := 0; i < 40; i++ {
		x := make(tensor.Vector, 8)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		cur := m.Predict(x)
		if cur == 2 {
			continue
		}
		prefs = append(prefs, Preference{X: x, Preferred: 2, Rejected: cur})
	}
	if len(prefs) < 10 {
		t.Fatal("not enough disagreeing probes")
	}
	alignment := append([]Preference(nil), prefs...)
	// Mix in consistency preferences from the base task (prefer the true
	// label over a wrong one) so tuning does not trade away the original
	// capability — the standard recipe against alignment tax.
	for i := 0; i < 80; i++ {
		x, y := ds.Example(i)
		prefs = append(prefs, Preference{X: x.Clone(), Preferred: y, Rejected: (y + 1) % 3})
	}
	before := 0
	for _, p := range alignment {
		if m.Logits(p.X)[p.Preferred] > m.Logits(p.X)[p.Rejected] {
			before++
		}
	}
	tuned := m.Clone()
	loss, err := PreferenceTune(tuned, prefs, TrainConfig{Epochs: 30, LR: 0.05, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	after := 0
	for _, p := range alignment {
		if tuned.Logits(p.X)[p.Preferred] > tuned.Logits(p.X)[p.Rejected] {
			after++
		}
	}
	if after <= before {
		t.Fatalf("preference satisfaction did not improve: %d -> %d of %d", before, after, len(alignment))
	}
	if frac := float64(after) / float64(len(alignment)); frac < 0.8 {
		t.Fatalf("only %.0f%% of alignment preferences satisfied after tuning", frac*100)
	}
	// The tuned model is a distinct version of the base — weight drift is
	// real but the original task is not destroyed.
	d, err := WeightDistance(m, tuned)
	if err != nil || d == 0 {
		t.Fatalf("preference tuning left weights unchanged: %v %v", d, err)
	}
	if acc := tuned.Accuracy(ds); acc < m.Accuracy(ds)-0.3 {
		t.Fatalf("preference tuning destroyed the base task: %v -> %v", m.Accuracy(ds), acc)
	}
}

func TestPreferenceTuneValidation(t *testing.T) {
	m := NewMLP([]int{4, 6, 3}, ReLU, xrand.New(1))
	if _, err := PreferenceTune(m, nil, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("empty preferences accepted")
	}
	bad := []Preference{{X: tensor.Vector{1}, Preferred: 0, Rejected: 1}}
	if _, err := PreferenceTune(m, bad, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	same := []Preference{{X: make(tensor.Vector, 4), Preferred: 1, Rejected: 1}}
	if _, err := PreferenceTune(m, same, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("preferred == rejected accepted")
	}
	rangeBad := []Preference{{X: make(tensor.Vector, 4), Preferred: 9, Rejected: 1}}
	if _, err := PreferenceTune(m, rangeBad, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("class out of range accepted")
	}
}

// Gradient check for the preference objective.
func TestPreferenceGradientMatchesFiniteDifferences(t *testing.T) {
	m := NewMLP([]int{3, 5, 3}, Tanh, xrand.New(5))
	p := Preference{X: tensor.Vector{0.4, -0.2, 0.9}, Preferred: 2, Rejected: 0}
	// One PreferenceTune epoch with a single preference and batch 1 applies
	// exactly -LR * grad; compare the induced weight delta with finite
	// differences of the loss.
	lossAt := func(model *MLP) float64 {
		logits := model.Logits(p.X)
		margin := logits[p.Preferred] - logits[p.Rejected]
		return -logInvLogit(margin)
	}
	base := m.Clone()
	tuned := m.Clone()
	if _, err := PreferenceTune(tuned, []Preference{p}, TrainConfig{Epochs: 1, LR: 1, BatchSize: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// grad ≈ (base - tuned) because LR = 1.
	const eps = 1e-6
	for l := range base.W {
		for i := range base.W[l].Data {
			analytic := base.W[l].Data[i] - tuned.W[l].Data[i]
			probe := base.Clone()
			probe.W[l].Data[i] += eps
			plus := lossAt(probe)
			probe.W[l].Data[i] -= 2 * eps
			minus := lossAt(probe)
			numeric := (plus - minus) / (2 * eps)
			if diff := analytic - numeric; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("layer %d weight %d: analytic %v vs numeric %v", l, i, analytic, numeric)
			}
		}
	}
}

// logInvLogit is log σ(margin), computed stably.
func logInvLogit(margin float64) float64 {
	if margin > 0 {
		return -math.Log1p(math.Exp(-margin))
	}
	return margin - math.Log1p(math.Exp(margin))
}

package nn

import (
	"fmt"
	"math"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Preference is one human-feedback comparison: for input X, the Preferred
// class output should beat the Rejected one.
type Preference struct {
	X         tensor.Vector
	Preferred int
	Rejected  int
}

// PreferenceTune adapts the model to pairwise preferences with a
// Bradley–Terry objective — the classification-scale analogue of preference
// tuning / RLHF-style alignment the paper lists among the A-based model
// modifications: loss = −log σ(z[preferred] − z[rejected]). It returns the
// final mean loss. m is modified in place.
func PreferenceTune(m *MLP, prefs []Preference, cfg TrainConfig) (float64, error) {
	if len(prefs) == 0 {
		return 0, fmt.Errorf("nn: no preferences")
	}
	for i, p := range prefs {
		if len(p.X) != m.InputDim() {
			return 0, fmt.Errorf("nn: preference %d input dim %d != model %d", i, len(p.X), m.InputDim())
		}
		if p.Preferred < 0 || p.Preferred >= m.OutputDim() ||
			p.Rejected < 0 || p.Rejected >= m.OutputDim() || p.Preferred == p.Rejected {
			return 0, fmt.Errorf("nn: preference %d has invalid classes (%d, %d)", i, p.Preferred, p.Rejected)
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	rng := xrand.New(cfg.Seed)
	g := NewGrads(m)
	lastLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(len(prefs))
		total := 0.0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			g.Zero()
			for _, idx := range perm[start:end] {
				p := prefs[idx]
				total += m.backwardWithDelta(p.X, g, func(logits tensor.Vector) (tensor.Vector, float64) {
					margin := logits[p.Preferred] - logits[p.Rejected]
					sigma := 1 / (1 + math.Exp(-margin))
					delta := tensor.NewVector(len(logits))
					// d(−log σ(margin))/dz = −(1−σ) on preferred, +(1−σ) on rejected.
					delta[p.Preferred] = -(1 - sigma)
					delta[p.Rejected] = +(1 - sigma)
					loss := -math.Log(math.Max(sigma, 1e-12))
					return delta, loss
				})
			}
			inv := 1.0 / float64(end-start)
			for l := range g.W {
				g.W[l].Scale(inv)
				g.B[l].Scale(inv)
				m.W[l].AddScaled(-cfg.LR, g.W[l])
				m.B[l].AddScaled(-cfg.LR, g.B[l])
			}
		}
		lastLoss = total / float64(len(prefs))
	}
	return lastLoss, nil
}

// backwardWithDelta backpropagates an arbitrary output-layer gradient
// (supplied by outDelta from the logits) and accumulates parameter gradients
// into g. It returns the loss value outDelta reports.
func (m *MLP) backwardWithDelta(x tensor.Vector, g *Grads,
	outDelta func(logits tensor.Vector) (tensor.Vector, float64)) float64 {
	L := len(m.W)
	acts := make([]tensor.Vector, L+1)
	acts[0] = x
	for l := 0; l < L; l++ {
		next := tensor.NewVector(m.Sizes[l+1])
		m.W[l].MatVec(next, acts[l])
		next.AddScaled(1, m.B[l])
		if l < L-1 {
			m.activate(next)
		}
		acts[l+1] = next
	}
	delta, loss := outDelta(acts[L])
	for l := L - 1; l >= 0; l-- {
		g.W[l].AddOuter(1, delta, acts[l])
		g.B[l].AddScaled(1, delta)
		if l == 0 {
			break
		}
		prev := tensor.NewVector(m.Sizes[l])
		m.W[l].MatVecT(prev, delta)
		dphi := tensor.NewVector(m.Sizes[l])
		m.activateGrad(acts[l], dphi)
		for i := range prev {
			prev[i] *= dphi[i]
		}
		delta = prev
	}
	return loss
}

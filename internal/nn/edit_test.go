package nn

import (
	"testing"

	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

func TestEditAssociationBasicFlips(t *testing.T) {
	ds := testDataset(t, "edit-basic", 8, 3, 200, 50)
	m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(51))
	if _, err := Train(m, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	x, y := ds.Example(0)
	target := (y + 1) % 3
	edited := m.Clone()
	res, err := EditAssociation(edited, x, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || edited.Predict(x) != target {
		t.Fatal("basic edit did not flip the prediction")
	}
	if res.DeltaNorm <= 0 {
		t.Fatalf("DeltaNorm = %v, want > 0", res.DeltaNorm)
	}
	// Rank one.
	delta := tensor.Sub(edited.W[1], m.W[1])
	sv := tensor.TopSingularValues(delta, 3, 60, xrand.New(52))
	if r := tensor.EffectiveRank(sv, 1e-6); r > 1 {
		t.Fatalf("basic edit delta rank = %d, want 1", r)
	}
}

func TestEditAssociationAlreadyTarget(t *testing.T) {
	ds := testDataset(t, "edit-noop", 8, 3, 200, 53)
	m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(54))
	if _, err := Train(m, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	x, _ := ds.Example(0)
	cur := m.Predict(x)
	before := m.FlattenWeights()
	res, err := EditAssociation(m, x, cur, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded || res.DeltaNorm != 0 {
		t.Fatalf("no-op edit should succeed with zero delta, got %+v", res)
	}
	after := m.FlattenWeights()
	if tensor.L2Distance(before, after) != 0 {
		t.Fatal("no-op edit changed weights")
	}
}

func TestEditWithContextLessDamagingThanBasic(t *testing.T) {
	ds := testDataset(t, "edit-cmp", 8, 3, 400, 55)
	m := NewMLP([]int{8, 16, 3}, ReLU, xrand.New(56))
	if _, err := Train(m, ds, DefaultTrainConfig()); err != nil {
		t.Fatal(err)
	}
	// Average damage over several edits: the covariance-aware variant should
	// be at least as gentle as the plain projection.
	var dmgBasic, dmgCtx float64
	for i := 0; i < 10; i++ {
		x, y := ds.Example(i)
		target := (y + 1) % 3

		e1 := m.Clone()
		if _, err := EditAssociation(e1, x, target, 0.1); err != nil {
			t.Fatal(err)
		}
		dmgBasic += m.Accuracy(ds) - e1.Accuracy(ds)

		e2 := m.Clone()
		if _, err := EditAssociationWithContext(e2, x, target, 0.1, ds.X); err != nil {
			t.Fatal(err)
		}
		dmgCtx += m.Accuracy(ds) - e2.Accuracy(ds)
	}
	if dmgCtx > dmgBasic+0.05 {
		t.Fatalf("context-aware edit more damaging: %v vs %v", dmgCtx, dmgBasic)
	}
}

func TestEditWithContextErrors(t *testing.T) {
	m := NewMLP([]int{4, 6, 2}, ReLU, xrand.New(57))
	ctx := tensor.NewMatrix(3, 4)
	if _, err := EditAssociationWithContext(m, tensor.Vector{1, 2, 3, 4}, 9, 0.1, ctx); err == nil {
		t.Fatal("expected target range error")
	}
	badCtx := tensor.NewMatrix(3, 5)
	if _, err := EditAssociationWithContext(m, tensor.Vector{1, 2, 3, 4}, 0, 0.1, badCtx); err == nil {
		t.Fatal("expected context dim error")
	}
}

package nn

import (
	"fmt"

	"modellake/internal/data"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// LoRA is a low-rank adapter for one layer of an MLP: the effective weight of
// the adapted layer is W + Alpha·A·B where A is (out×rank) and B is
// (rank×in). Training a LoRA leaves the base weights frozen, so merging the
// adapter produces a child model whose weight delta has rank ≤ rank — the
// signature the version-task edge classifier detects.
type LoRA struct {
	Layer int
	Rank  int
	Alpha float64
	A     tensor.Matrix // out x rank
	B     tensor.Matrix // rank x in
}

// NewLoRA allocates an adapter for the given layer of m. A is initialized to
// small Gaussian values and B to zero, so the adapter starts as a no-op
// (the standard LoRA initialization).
func NewLoRA(m *MLP, layer, rank int, rng *xrand.RNG) (*LoRA, error) {
	if layer < 0 || layer >= m.LayerCount() {
		return nil, fmt.Errorf("nn: LoRA layer %d out of range [0,%d)", layer, m.LayerCount())
	}
	out, in := m.W[layer].Rows, m.W[layer].Cols
	if rank <= 0 || rank > out || rank > in {
		return nil, fmt.Errorf("nn: LoRA rank %d invalid for %dx%d layer", rank, out, in)
	}
	l := &LoRA{Layer: layer, Rank: rank, Alpha: 1.0,
		A: tensor.NewMatrix(out, rank), B: tensor.NewMatrix(rank, in)}
	for i := range l.A.Data {
		l.A.Data[i] = rng.NormFloat64() * 0.1
	}
	return l, nil
}

// Delta returns Alpha·A·B, the dense weight delta the adapter represents.
func (l *LoRA) Delta() tensor.Matrix {
	d := tensor.MatMul(l.A, l.B)
	d.Scale(l.Alpha)
	return d
}

// Merge returns a copy of base with the adapter folded into its weights.
func (l *LoRA) Merge(base *MLP) *MLP {
	out := base.Clone()
	out.W[l.Layer].AddScaled(1, l.Delta())
	return out
}

// TrainLoRA fits the adapter on ds with the base model frozen and returns the
// final mean training loss. Gradients with respect to the adapted layer's
// effective weight dW are projected onto the factors:
//
//	dA = Alpha · dW · Bᵀ,   dB = Alpha · Aᵀ · dW.
func TrainLoRA(base *MLP, l *LoRA, ds *data.Dataset, cfg TrainConfig) (float64, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("nn: empty dataset %q", ds.ID)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.Optimizer != "" && cfg.Optimizer != "sgd" {
		return 0, fmt.Errorf("nn: LoRA training supports only sgd, got %q", cfg.Optimizer)
	}
	rng := xrand.New(cfg.Seed)
	work := base.Clone()
	g := NewGrads(work)
	lastLoss := 0.0
	dA := tensor.NewMatrix(l.A.Rows, l.A.Cols)
	dB := tensor.NewMatrix(l.B.Rows, l.B.Cols)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(ds.Len())
		total := 0.0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			// Refresh the effective weight of the adapted layer.
			copy(work.W[l.Layer].Data, base.W[l.Layer].Data)
			work.W[l.Layer].AddScaled(1, l.Delta())

			g.Zero()
			for _, idx := range perm[start:end] {
				x, y := ds.Example(idx)
				total += work.Backward(x, y, g)
			}
			inv := 1.0 / float64(end-start)
			dW := g.W[l.Layer]
			dW.Scale(inv)
			// dA = α dW Bᵀ ; dB = α Aᵀ dW
			prodA := tensor.MatMul(dW, l.B.Transpose())
			prodB := tensor.MatMul(l.A.Transpose(), dW)
			copy(dA.Data, prodA.Data)
			copy(dB.Data, prodB.Data)
			dA.Scale(l.Alpha)
			dB.Scale(l.Alpha)
			l.A.AddScaled(-cfg.LR, dA)
			l.B.AddScaled(-cfg.LR, dB)
		}
		lastLoss = total / float64(ds.Len())
	}
	return lastLoss, nil
}

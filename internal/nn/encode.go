package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"modellake/internal/tensor"
)

// Binary model format: magic, activation, layer count, sizes, then each
// layer's weight matrix followed by its bias encoded as a 1×n matrix.

const mlpMagic uint32 = 0x4d4c5031 // "MLP1"

// WriteMLP serializes m to w in the stable binary format used by the blob
// store.
func WriteMLP(w io.Writer, m *MLP) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], mlpMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(m.Act))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(m.Sizes)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: write header: %w", err)
	}
	sizes := make([]byte, 4*len(m.Sizes))
	for i, s := range m.Sizes {
		binary.LittleEndian.PutUint32(sizes[i*4:], uint32(s))
	}
	if _, err := w.Write(sizes); err != nil {
		return fmt.Errorf("nn: write sizes: %w", err)
	}
	for l := range m.W {
		if err := tensor.WriteMatrix(w, m.W[l]); err != nil {
			return fmt.Errorf("nn: layer %d weights: %w", l, err)
		}
		bias := tensor.Matrix{Rows: 1, Cols: len(m.B[l]), Data: m.B[l]}
		if err := tensor.WriteMatrix(w, bias); err != nil {
			return fmt.Errorf("nn: layer %d bias: %w", l, err)
		}
	}
	return nil
}

// ReadMLP deserializes a model written with WriteMLP.
func ReadMLP(r io.Reader) (*MLP, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nn: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != mlpMagic {
		return nil, fmt.Errorf("nn: bad model magic")
	}
	act := Activation(binary.LittleEndian.Uint32(hdr[4:8]))
	nSizes := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if nSizes < 2 || nSizes > 64 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nSizes)
	}
	sizesBuf := make([]byte, 4*nSizes)
	if _, err := io.ReadFull(r, sizesBuf); err != nil {
		return nil, fmt.Errorf("nn: read sizes: %w", err)
	}
	sizes := make([]int, nSizes)
	for i := range sizes {
		sizes[i] = int(binary.LittleEndian.Uint32(sizesBuf[i*4:]))
		if sizes[i] <= 0 {
			return nil, fmt.Errorf("nn: non-positive layer size %d", sizes[i])
		}
	}
	m := &MLP{
		Sizes: sizes,
		Act:   act,
		W:     make([]tensor.Matrix, nSizes-1),
		B:     make([]tensor.Vector, nSizes-1),
	}
	for l := 0; l < nSizes-1; l++ {
		w, err := tensor.ReadMatrix(r)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d weights: %w", l, err)
		}
		if w.Rows != sizes[l+1] || w.Cols != sizes[l] {
			return nil, fmt.Errorf("nn: layer %d shape %dx%d inconsistent with sizes", l, w.Rows, w.Cols)
		}
		b, err := tensor.ReadMatrix(r)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d bias: %w", l, err)
		}
		if b.Rows != 1 || b.Cols != sizes[l+1] {
			return nil, fmt.Errorf("nn: layer %d bias shape %dx%d inconsistent", l, b.Rows, b.Cols)
		}
		m.W[l] = w
		m.B[l] = tensor.Vector(b.Data)
	}
	return m, nil
}

// EncodeMLP serializes m to a byte slice.
func EncodeMLP(m *MLP) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteMLP(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMLP deserializes a model from a byte slice.
func DecodeMLP(b []byte) (*MLP, error) {
	return ReadMLP(bytes.NewReader(b))
}

package advisor

import (
	"strings"
	"testing"

	"modellake/internal/benchmark"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/registry"
	"modellake/internal/search"
)

func buildLake(t *testing.T, seed uint64, drop float64) (*lake.Lake, *lakegen.Population, map[int]string) {
	t.Helper()
	l, err := lake.Open(lake.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	spec := lakegen.DefaultSpec(seed)
	spec.NumBases = 3
	spec.ChildrenPerBase = 4
	spec.CardDropProb = drop
	pop, err := lakegen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]string{}
	for i, m := range pop.Members {
		rec, err := l.Ingest(m.Model, m.Card, registry.RegisterOptions{Name: m.Truth.Name})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = rec.ID
	}
	return l, pop, ids
}

func legalExamples(t *testing.T, pop *lakegen.Population, n int) []search.TaskExample {
	t.Helper()
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 && m.Truth.Domain == "legal" {
			return search.DatasetAsTask(pop.Datasets[m.Truth.DatasetID], n)
		}
	}
	t.Fatal("no legal base")
	return nil
}

func TestAdviseRecommendsDomainExperts(t *testing.T) {
	l, pop, ids := buildLake(t, 601, 0.0)
	advice, err := Advise(l, legalExamples(t, pop, 24), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Recommendations) != 3 {
		t.Fatalf("got %d recommendations", len(advice.Recommendations))
	}
	// The top recommendation must be a legal-family model with high fit.
	top := advice.Recommendations[0]
	var topIdx int
	for i, id := range ids {
		if id == top.ModelID {
			topIdx = i
		}
	}
	if base := pop.Members[topIdx].Truth; !strings.HasPrefix(base.Domain, "legal") {
		t.Fatalf("top recommendation domain = %s", base.Domain)
	}
	if top.Fit < 0.8 || top.Accuracy < 0.8 {
		t.Fatalf("top fit/accuracy = %v/%v", top.Fit, top.Accuracy)
	}
	// Recommendations are sorted by fit.
	for i := 1; i < len(advice.Recommendations); i++ {
		if advice.Recommendations[i].Fit > advice.Recommendations[i-1].Fit {
			t.Fatal("recommendations not sorted by fit")
		}
	}
}

func TestAdviseCaveatsOnPoorDocumentation(t *testing.T) {
	l, pop, _ := buildLake(t, 602, 1.0) // all documentation gone
	advice, err := Advise(l, legalExamples(t, pop, 16), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	for _, rec := range advice.Recommendations {
		if len(rec.Caveats) == 0 {
			t.Fatalf("undocumented model %s recommended without caveats", rec.ModelID)
		}
	}
	md := advice.Markdown()
	if !strings.Contains(md, "caveat:") {
		t.Fatalf("markdown missing caveats:\n%s", md)
	}
}

func TestAdviseValidation(t *testing.T) {
	l, _, _ := buildLake(t, 603, 0.0)
	if _, err := Advise(l, nil, 3); err == nil {
		t.Fatal("empty examples accepted")
	}
}

func TestAdviseMarkdownEmptyLake(t *testing.T) {
	l, err := lake.Open(lake.Config{Seed: 604})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	examples := []search.TaskExample{{X: make([]float64, 8), Y: 0}}
	advice, err := Advise(l, examples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(advice.Markdown(), "No lake model") {
		t.Fatal("empty-lake advice should say so")
	}
}

func TestSuggestBenchmarkPicksMatchingDomain(t *testing.T) {
	l, pop, _ := buildLake(t, 605, 0.0)
	// Register one benchmark per base domain.
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 {
			l.RegisterBenchmark(&benchmark.Benchmark{
				ID: "bench-" + m.Truth.Domain, DS: pop.Datasets[m.Truth.DatasetID],
				Metric: benchmark.MetricAccuracy,
			})
		}
	}
	id, dist, err := SuggestBenchmark(l, legalExamples(t, pop, 32))
	if err != nil {
		t.Fatal(err)
	}
	if id != "bench-legal" {
		t.Fatalf("suggested %q (dist %v), want bench-legal", id, dist)
	}
}

func TestSuggestBenchmarkErrors(t *testing.T) {
	l, pop, _ := buildLake(t, 606, 0.0)
	if _, _, err := SuggestBenchmark(l, nil); err == nil {
		t.Fatal("empty examples accepted")
	}
	// No benchmarks registered → error.
	if _, _, err := SuggestBenchmark(l, legalExamples(t, pop, 8)); err == nil {
		t.Fatal("no-benchmark lake produced a suggestion")
	}
}

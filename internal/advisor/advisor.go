// Package advisor realizes §5's "model inference" component: helping a user
// who has a task — but not the expertise to pick benchmarks and models — get
// a vetted recommendation. Given labeled examples of the task, the advisor
// selects candidate models by observable behaviour, measures them on the
// user's own examples, inspects their documentation, and returns ranked
// recommendations with explicit caveats ("a classifier's behavior may be
// misinterpreted if a user does not understand the type of data it was
// trained on" — the advisor surfaces exactly that context).
package advisor

import (
	"fmt"
	"strings"

	"modellake/internal/benchmark"
	"modellake/internal/lake"
	"modellake/internal/search"
	"modellake/internal/tensor"
)

// Recommendation is one advised model with its measured fit and caveats.
type Recommendation struct {
	ModelID  string
	Name     string
	Fit      float64 // mean correct-label probability on the user's examples
	Accuracy float64 // argmax accuracy on the user's examples
	Domain   string  // documented or lake-inferred domain
	Caveats  []string
}

// Advice is the advisor's answer.
type Advice struct {
	Examples        int
	Recommendations []Recommendation
}

// Markdown renders the advice for a human.
func (a *Advice) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Model recommendation (%d task examples)\n\n", a.Examples)
	if len(a.Recommendations) == 0 {
		sb.WriteString("No lake model can run this task.\n")
		return sb.String()
	}
	for i, r := range a.Recommendations {
		fmt.Fprintf(&sb, "%d. **%s** (%s) — fit %.3f, accuracy %.0f%%", i+1, r.Name, r.ModelID,
			r.Fit, r.Accuracy*100)
		if r.Domain != "" {
			fmt.Fprintf(&sb, ", domain %s", r.Domain)
		}
		sb.WriteString("\n")
		for _, c := range r.Caveats {
			fmt.Fprintf(&sb, "   - caveat: %s\n", c)
		}
	}
	return sb.String()
}

// SuggestBenchmark picks the registered benchmark whose dataset most
// resembles the user's task examples — §5's "dynamic selection of benchmarks
// for performance measurement". Resemblance is the Fréchet distance between
// diagonal Gaussians fitted to the raw feature distributions. It returns the
// benchmark ID and the distance, or an error when no benchmark is
// comparable.
func SuggestBenchmark(lk *lake.Lake, examples []search.TaskExample) (string, float64, error) {
	if len(examples) == 0 {
		return "", 0, fmt.Errorf("advisor: need at least one task example")
	}
	dim := len(examples[0].X)
	exMu, exVar := featureGaussian(func(i int) tensor.Vector { return examples[i].X }, len(examples), dim)

	bestID, bestDist := "", 0.0
	found := false
	for _, b := range lk.Benchmarks() {
		if b.DS == nil || b.DS.Len() == 0 || b.DS.Dim() != dim {
			continue
		}
		bMu, bVar := featureGaussian(func(i int) tensor.Vector { return b.DS.X.Row(i) }, b.DS.Len(), dim)
		d, err := benchmark.FrechetGaussian(exMu, exVar, bMu, bVar)
		if err != nil {
			continue
		}
		if !found || d < bestDist {
			bestID, bestDist, found = b.ID, d, true
		}
	}
	if !found {
		return "", 0, fmt.Errorf("advisor: no registered benchmark matches the task's feature shape")
	}
	return bestID, bestDist, nil
}

func featureGaussian(row func(i int) tensor.Vector, n, dim int) (mu, variance tensor.Vector) {
	mu = tensor.NewVector(dim)
	variance = tensor.NewVector(dim)
	for i := 0; i < n; i++ {
		r := row(i)
		for j := 0; j < dim; j++ {
			mu[j] += r[j]
			variance[j] += r[j] * r[j]
		}
	}
	for j := 0; j < dim; j++ {
		mu[j] /= float64(n)
		variance[j] = variance[j]/float64(n) - mu[j]*mu[j]
	}
	return mu, variance
}

// Advise ranks up to k lake models for the task the examples describe.
func Advise(lk *lake.Lake, examples []search.TaskExample, k int) (*Advice, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("advisor: need at least one task example")
	}
	if k <= 0 {
		k = 5
	}
	hits, err := lk.SearchTask(examples, k)
	if err != nil {
		return nil, err
	}
	advice := &Advice{Examples: len(examples)}
	for _, hit := range hits {
		rec := Recommendation{ModelID: hit.ID, Fit: hit.Score}
		if r, err := lk.Record(hit.ID); err == nil {
			rec.Name = r.Name
		}
		// Measure argmax accuracy on the user's examples.
		if h, err := lk.Model(hit.ID); err == nil {
			correct, total := 0, 0
			for _, ex := range examples {
				pred, err := h.Predict(ex.X)
				if err != nil {
					continue
				}
				total++
				if pred == ex.Y {
					correct++
				}
			}
			if total > 0 {
				rec.Accuracy = float64(correct) / float64(total)
			}
		}
		// Documentation context and caveats.
		c, err := lk.Card(hit.ID)
		switch {
		case err != nil:
			rec.Caveats = append(rec.Caveats, "model has no documentation at all")
		default:
			rec.Domain = c.Domain
			if comp := c.Completeness(); comp < 0.5 {
				rec.Caveats = append(rec.Caveats,
					fmt.Sprintf("documentation is %.0f%% complete; provenance unclear", comp*100))
			}
			if c.Domain == "" {
				rec.Caveats = append(rec.Caveats, "training domain undocumented")
			}
			if c.License == "" {
				rec.Caveats = append(rec.Caveats, "no license declared")
			}
		}
		if rec.Accuracy > 0 && rec.Accuracy < 0.7 {
			rec.Caveats = append(rec.Caveats,
				fmt.Sprintf("only %.0f%% accurate on your examples; consider fine-tuning", rec.Accuracy*100))
		}
		advice.Recommendations = append(advice.Recommendations, rec)
	}
	return advice, nil
}

package provenance

import (
	"errors"
	"strings"
	"testing"

	"modellake/internal/kvstore"
	"modellake/internal/version"
)

func journal() *Journal { return NewJournal(kvstore.OpenMemory()) }

func TestPutGetRecord(t *testing.T) {
	j := journal()
	rec, err := j.Put("model:m-1", Entity, "legal classifier", map[string]string{"arch": "mlp"})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq == 0 {
		t.Fatal("seq not assigned")
	}
	got, err := j.Get("model:m-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "legal classifier" || got.Kind != Entity || got.Attrs["arch"] != "mlp" {
		t.Fatalf("record = %+v", got)
	}
	if _, err := j.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	if _, err := j.Put("", Entity, "x", nil); err == nil {
		t.Fatal("empty id accepted")
	}
}

func TestRelateRequiresEndpoints(t *testing.T) {
	j := journal()
	j.Put("a", Entity, "", nil)
	if err := j.Relate(WasDerivedFrom, "a", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object accepted: %v", err)
	}
	if err := j.Relate(WasDerivedFrom, "ghost", "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing subject accepted: %v", err)
	}
	j.Put("b", Entity, "", nil)
	if err := j.Relate(WasDerivedFrom, "b", "a"); err != nil {
		t.Fatal(err)
	}
	rels, err := j.Relations()
	if err != nil || len(rels) != 1 {
		t.Fatalf("relations = %v, %v", rels, err)
	}
}

func TestSourcesTransitive(t *testing.T) {
	j := journal()
	for _, id := range []string{"base", "mid", "leaf", "other"} {
		j.Put(id, Entity, "", nil)
	}
	j.Relate(WasDerivedFrom, "mid", "base")
	j.Relate(WasDerivedFrom, "leaf", "mid")
	src, err := j.Sources("leaf")
	if err != nil {
		t.Fatal(err)
	}
	if len(src) != 2 || src[0] != "mid" || src[1] != "base" {
		t.Fatalf("Sources(leaf) = %v", src)
	}
	src, _ = j.Sources("base")
	if len(src) != 0 {
		t.Fatalf("Sources(base) = %v", src)
	}
}

func TestWhyExplanation(t *testing.T) {
	j := journal()
	j.Put("model:child", Entity, "", nil)
	j.Put("activity:finetune-1", Activity, "fine-tuning run", nil)
	j.Put("dataset:legal/v2", Entity, "", nil)
	j.Put("model:base", Entity, "", nil)
	j.Put("agent:lakegen", Agent, "", nil)
	j.Relate(WasGeneratedBy, "model:child", "activity:finetune-1")
	j.Relate(Used, "activity:finetune-1", "dataset:legal/v2")
	j.Relate(Used, "activity:finetune-1", "model:base")
	j.Relate(WasAttributedTo, "model:child", "agent:lakegen")

	ex, err := j.Why("model:child")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Activity != "activity:finetune-1" {
		t.Fatalf("activity = %q", ex.Activity)
	}
	if len(ex.UsedInputs) != 2 || ex.UsedInputs[0] != "dataset:legal/v2" {
		t.Fatalf("used = %v", ex.UsedInputs)
	}
	if len(ex.Agents) != 1 || ex.Agents[0] != "agent:lakegen" {
		t.Fatalf("agents = %v", ex.Agents)
	}
	if _, err := j.Why("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Why on missing entity: %v", err)
	}
}

func TestJournalDurability(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.Open(dir+"/prov.log", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := NewJournal(kv)
	j.Put("a", Entity, "", nil)
	j.Put("b", Entity, "", nil)
	j.Relate(WasDerivedFrom, "b", "a")
	kv.Close()

	kv2, err := kvstore.Open(dir+"/prov.log", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	j2 := NewJournal(kv2)
	src, err := j2.Sources("b")
	if err != nil || len(src) != 1 || src[0] != "a" {
		t.Fatalf("provenance lost across reopen: %v %v", src, err)
	}
}

func testGraph() *version.Graph {
	return &version.Graph{
		Nodes: []string{"m-1", "m-2", "m-3"},
		Edges: []version.Edge{
			{Parent: "m-1", Child: "m-2", Transform: "finetune"},
			{Parent: "m-1", Child: "m-3", Transform: "lora"},
		},
	}
}

func TestGraphHashStability(t *testing.T) {
	g1 := testGraph()
	g2 := testGraph()
	// Permute order: hash must not change.
	g2.Nodes[0], g2.Nodes[2] = g2.Nodes[2], g2.Nodes[0]
	g2.Edges[0], g2.Edges[1] = g2.Edges[1], g2.Edges[0]
	if GraphHash(g1) != GraphHash(g2) {
		t.Fatal("graph hash depends on ordering")
	}
}

func TestGraphHashSensitivity(t *testing.T) {
	base := GraphHash(testGraph())
	g := testGraph()
	g.Edges[0].Transform = "edit"
	if GraphHash(g) == base {
		t.Fatal("transform change not reflected in hash")
	}
	g2 := testGraph()
	g2.Edges = g2.Edges[:1]
	if GraphHash(g2) == base {
		t.Fatal("edge removal not reflected in hash")
	}
	g3 := testGraph()
	g3.Nodes = append(g3.Nodes, "m-4")
	if GraphHash(g3) == base {
		t.Fatal("node addition not reflected in hash")
	}
}

func TestCitationRendering(t *testing.T) {
	c := Cite("m-000007", "legal-summarizer", "2", testGraph(), 41)
	s := c.String()
	for _, want := range []string{"legal-summarizer v2", "m-000007", "@ t41"} {
		if !strings.Contains(s, want) {
			t.Fatalf("citation %q missing %q", s, want)
		}
	}
	// Citation changes exactly when the graph changes.
	same := Cite("m-000007", "legal-summarizer", "2", testGraph(), 41)
	if c != same {
		t.Fatal("identical graph produced different citations")
	}
	g := testGraph()
	g.Edges = append(g.Edges, version.Edge{Parent: "m-2", Child: "m-4t", Transform: "finetune"})
	updated := Cite("m-000007", "legal-summarizer", "2", g, 42)
	if updated.GraphHash == c.GraphHash {
		t.Fatal("graph update did not refresh the citation")
	}
}

// Package provenance records why/where-provenance for lake artifacts using a
// small PROV-inspired data model (entities, activities, agents, and the
// wasDerivedFrom / used / wasGeneratedBy / wasAttributedTo relations), and
// generates version-graph-anchored citations for models and their outputs —
// the paper's §6 "Data and Model Citation" application.
//
// Records are journaled durably in the kvstore under the "prov/" prefix so
// provenance survives restarts and is append-only like the literature's
// provenance stores.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"modellake/internal/kvstore"
	"modellake/internal/version"
)

// Kind classifies a provenance record.
type Kind string

// PROV node kinds.
const (
	Entity   Kind = "entity"
	Activity Kind = "activity"
	Agent    Kind = "agent"
)

// RelationType classifies an edge between records.
type RelationType string

// PROV relation types.
const (
	WasDerivedFrom  RelationType = "wasDerivedFrom"
	Used            RelationType = "used"
	WasGeneratedBy  RelationType = "wasGeneratedBy"
	WasAttributedTo RelationType = "wasAttributedTo"
)

// Record is one provenance node.
type Record struct {
	ID    string            `json:"id"`
	Kind  Kind              `json:"kind"`
	Label string            `json:"label,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Seq   uint64            `json:"seq"`
}

// Relation is one provenance edge: Subject →type→ Object (e.g. derived
// entity wasDerivedFrom source entity).
type Relation struct {
	Type    RelationType `json:"type"`
	Subject string       `json:"subject"`
	Object  string       `json:"object"`
	Seq     uint64       `json:"seq"`
}

// ErrNotFound reports a missing provenance record.
var ErrNotFound = errors.New("provenance: record not found")

// provSeqBlock is the lease size for journal sequence numbers (see
// kvstore.Sequence): one durable write per 64 provenance records instead of
// one per record. Sequence numbers may skip after a crash but never repeat,
// which is all journal ordering needs.
const provSeqBlock = 64

// Journal is the durable provenance store.
type Journal struct {
	kv  *kvstore.Store
	seq *kvstore.Sequence
}

// NewJournal wraps a kvstore as a provenance journal.
func NewJournal(kv *kvstore.Store) *Journal {
	return &Journal{kv: kv, seq: kvstore.NewSequence(kv, "prov/seq", provSeqBlock)}
}

func recKey(id string) string  { return "prov/rec/" + id }
func relKey(seq uint64) string { return fmt.Sprintf("prov/rel/%016d", seq) }

// Put records a node. Re-recording an existing ID overwrites its label and
// attributes (provenance identity is the ID).
func (j *Journal) Put(id string, kind Kind, label string, attrs map[string]string) (*Record, error) {
	rec, op, err := j.PutOps(id, kind, label, attrs)
	if err != nil {
		return nil, err
	}
	if err := j.kv.Apply([]kvstore.Op{op}); err != nil {
		return nil, err
	}
	return rec, nil
}

// PutOps builds the journal write for a node without committing it, so bulk
// ingest can fold many provenance records (and their subject's registry
// keys) into one atomic kvstore batch. Only the sequence lease may touch
// disk here.
func (j *Journal) PutOps(id string, kind Kind, label string, attrs map[string]string) (*Record, kvstore.Op, error) {
	if id == "" {
		return nil, kvstore.Op{}, fmt.Errorf("provenance: empty record id")
	}
	seq, err := j.seq.Next()
	if err != nil {
		return nil, kvstore.Op{}, err
	}
	rec := &Record{ID: id, Kind: kind, Label: label, Attrs: attrs, Seq: seq}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, kvstore.Op{}, fmt.Errorf("provenance: marshal: %w", err)
	}
	return rec, kvstore.Op{Key: recKey(id), Value: b}, nil
}

// Get returns the record with the given ID.
func (j *Journal) Get(id string) (*Record, error) {
	b, err := j.kv.Get(recKey(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("provenance: decode %s: %w", id, err)
	}
	return &rec, nil
}

// Relate journals a relation edge. Both endpoints must already be recorded.
func (j *Journal) Relate(typ RelationType, subject, object string) error {
	op, err := j.RelateOps(typ, subject, object, nil)
	if err != nil {
		return err
	}
	return j.kv.Apply([]kvstore.Op{op})
}

// RelateOps builds (without committing) the journal write for a relation
// edge. Both endpoints must already be recorded — either durably, or as a
// pending write in the same batch, which the caller vouches for via the
// optional pending predicate.
func (j *Journal) RelateOps(typ RelationType, subject, object string, pending func(id string) bool) (kvstore.Op, error) {
	known := func(id string) bool {
		return j.kv.Has(recKey(id)) || (pending != nil && pending(id))
	}
	if !known(subject) {
		return kvstore.Op{}, fmt.Errorf("%w: subject %s", ErrNotFound, subject)
	}
	if !known(object) {
		return kvstore.Op{}, fmt.Errorf("%w: object %s", ErrNotFound, object)
	}
	seq, err := j.seq.Next()
	if err != nil {
		return kvstore.Op{}, err
	}
	rel := Relation{Type: typ, Subject: subject, Object: object, Seq: seq}
	b, err := json.Marshal(rel)
	if err != nil {
		return kvstore.Op{}, fmt.Errorf("provenance: marshal relation: %w", err)
	}
	return kvstore.Op{Key: relKey(seq), Value: b}, nil
}

// Relations returns all journaled relations in journal order.
func (j *Journal) Relations() ([]Relation, error) {
	var out []Relation
	var decodeErr error
	err := j.kv.Scan("prov/rel/", func(k string, v []byte) bool {
		var rel Relation
		if err := json.Unmarshal(v, &rel); err != nil {
			decodeErr = fmt.Errorf("provenance: decode %s: %w", k, err)
			return false
		}
		out = append(out, rel)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, decodeErr
}

// Sources returns the transitive wasDerivedFrom ancestry of an entity —
// where-provenance: the sources this artifact ultimately came from.
func (j *Journal) Sources(entity string) ([]string, error) {
	rels, err := j.Relations()
	if err != nil {
		return nil, err
	}
	parents := map[string][]string{}
	for _, r := range rels {
		if r.Type == WasDerivedFrom {
			parents[r.Subject] = append(parents[r.Subject], r.Object)
		}
	}
	var out []string
	seen := map[string]bool{entity: true}
	queue := []string{entity}
	for qi := 0; qi < len(queue); qi++ {
		for _, p := range parents[queue[qi]] {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				queue = append(queue, p)
			}
		}
	}
	return out, nil
}

// Explanation is why-provenance for an entity: the activity that generated
// it, the entities that activity used, and the responsible agents.
type Explanation struct {
	Entity     string
	Activity   string
	UsedInputs []string
	Agents     []string
}

// Why explains how an entity came to be.
func (j *Journal) Why(entity string) (*Explanation, error) {
	if _, err := j.Get(entity); err != nil {
		return nil, err
	}
	rels, err := j.Relations()
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Entity: entity}
	for _, r := range rels {
		if r.Type == WasGeneratedBy && r.Subject == entity {
			ex.Activity = r.Object
		}
		if r.Type == WasAttributedTo && r.Subject == entity {
			ex.Agents = append(ex.Agents, r.Object)
		}
	}
	if ex.Activity != "" {
		for _, r := range rels {
			if r.Type == Used && r.Subject == ex.Activity {
				ex.UsedInputs = append(ex.UsedInputs, r.Object)
			}
		}
	}
	sort.Strings(ex.UsedInputs)
	sort.Strings(ex.Agents)
	return ex, nil
}

// GraphHash computes a canonical digest of a version graph: the citation
// anchor. Any change to nodes or edges changes the hash; node and edge order
// do not.
func GraphHash(g *version.Graph) string {
	nodes := append([]string(nil), g.Nodes...)
	sort.Strings(nodes)
	type edgeKey struct{ p, c, t string }
	edges := make([]edgeKey, 0, len(g.Edges))
	for _, e := range g.Edges {
		edges = append(edges, edgeKey{e.Parent, e.Child, e.Transform})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].p != edges[j].p {
			return edges[i].p < edges[j].p
		}
		if edges[i].c != edges[j].c {
			return edges[i].c < edges[j].c
		}
		return edges[i].t < edges[j].t
	})
	h := sha256.New()
	for _, n := range nodes {
		fmt.Fprintf(h, "n:%s\n", n)
	}
	for _, e := range edges {
		fmt.Fprintf(h, "e:%s>%s:%s\n", e.p, e.c, e.t)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Citation is a reproducible reference to a model at a specific version-
// graph snapshot, per the paper: "the platform would refer to its versioning
// graph and generate a citation with the model version and timestamp of the
// graph. Upon any updates of the graph, a new citation would be generated."
type Citation struct {
	ModelID   string `json:"model_id"`
	ModelName string `json:"model_name"`
	Version   string `json:"version"`
	GraphHash string `json:"graph_hash"`
	Snapshot  uint64 `json:"snapshot"` // logical lake time of the graph
}

// Cite builds a citation for a model against the current version graph.
func Cite(modelID, name, ver string, g *version.Graph, snapshot uint64) Citation {
	return Citation{
		ModelID:   modelID,
		ModelName: name,
		Version:   ver,
		GraphHash: GraphHash(g),
		Snapshot:  snapshot,
	}
}

// String renders the citation.
func (c Citation) String() string {
	short := c.GraphHash
	if len(short) > 12 {
		short = short[:12]
	}
	return fmt.Sprintf("%s v%s (%s), model-lake graph %s @ t%d",
		c.ModelName, c.Version, c.ModelID, short, c.Snapshot)
}

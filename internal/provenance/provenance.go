// Package provenance records why/where-provenance for lake artifacts using a
// small PROV-inspired data model (entities, activities, agents, and the
// wasDerivedFrom / used / wasGeneratedBy / wasAttributedTo relations), and
// generates version-graph-anchored citations for models and their outputs —
// the paper's §6 "Data and Model Citation" application.
//
// Records are journaled durably in the kvstore under the "prov/" prefix so
// provenance survives restarts and is append-only like the literature's
// provenance stores.
package provenance

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"modellake/internal/kvstore"
	"modellake/internal/version"
)

// Kind classifies a provenance record.
type Kind string

// PROV node kinds.
const (
	Entity   Kind = "entity"
	Activity Kind = "activity"
	Agent    Kind = "agent"
)

// RelationType classifies an edge between records.
type RelationType string

// PROV relation types.
const (
	WasDerivedFrom  RelationType = "wasDerivedFrom"
	Used            RelationType = "used"
	WasGeneratedBy  RelationType = "wasGeneratedBy"
	WasAttributedTo RelationType = "wasAttributedTo"
)

// Record is one provenance node.
type Record struct {
	ID    string            `json:"id"`
	Kind  Kind              `json:"kind"`
	Label string            `json:"label,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
	Seq   uint64            `json:"seq"`
}

// Relation is one provenance edge: Subject →type→ Object (e.g. derived
// entity wasDerivedFrom source entity).
type Relation struct {
	Type    RelationType `json:"type"`
	Subject string       `json:"subject"`
	Object  string       `json:"object"`
	Seq     uint64       `json:"seq"`
}

// ErrNotFound reports a missing provenance record.
var ErrNotFound = errors.New("provenance: record not found")

// Journal is the durable provenance store.
type Journal struct {
	kv *kvstore.Store
	mu sync.Mutex
}

// NewJournal wraps a kvstore as a provenance journal.
func NewJournal(kv *kvstore.Store) *Journal { return &Journal{kv: kv} }

func recKey(id string) string  { return "prov/rec/" + id }
func relKey(seq uint64) string { return fmt.Sprintf("prov/rel/%016d", seq) }

func (j *Journal) nextSeq() (uint64, error) {
	var seq uint64
	if b, err := j.kv.Get("prov/seq"); err == nil && len(b) == 8 {
		seq = binary.LittleEndian.Uint64(b)
	}
	seq++
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, seq)
	if err := j.kv.Put("prov/seq", buf); err != nil {
		return 0, err
	}
	return seq, nil
}

// Put records a node. Re-recording an existing ID overwrites its label and
// attributes (provenance identity is the ID).
func (j *Journal) Put(id string, kind Kind, label string, attrs map[string]string) (*Record, error) {
	if id == "" {
		return nil, fmt.Errorf("provenance: empty record id")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	seq, err := j.nextSeq()
	if err != nil {
		return nil, err
	}
	rec := &Record{ID: id, Kind: kind, Label: label, Attrs: attrs, Seq: seq}
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("provenance: marshal: %w", err)
	}
	if err := j.kv.Put(recKey(id), b); err != nil {
		return nil, err
	}
	return rec, nil
}

// Get returns the record with the given ID.
func (j *Journal) Get(id string) (*Record, error) {
	b, err := j.kv.Get(recKey(id))
	if err != nil {
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("provenance: decode %s: %w", id, err)
	}
	return &rec, nil
}

// Relate journals a relation edge. Both endpoints must already be recorded.
func (j *Journal) Relate(typ RelationType, subject, object string) error {
	if !j.kv.Has(recKey(subject)) {
		return fmt.Errorf("%w: subject %s", ErrNotFound, subject)
	}
	if !j.kv.Has(recKey(object)) {
		return fmt.Errorf("%w: object %s", ErrNotFound, object)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	seq, err := j.nextSeq()
	if err != nil {
		return err
	}
	rel := Relation{Type: typ, Subject: subject, Object: object, Seq: seq}
	b, err := json.Marshal(rel)
	if err != nil {
		return fmt.Errorf("provenance: marshal relation: %w", err)
	}
	return j.kv.Put(relKey(seq), b)
}

// Relations returns all journaled relations in journal order.
func (j *Journal) Relations() ([]Relation, error) {
	var out []Relation
	var decodeErr error
	err := j.kv.Scan("prov/rel/", func(k string, v []byte) bool {
		var rel Relation
		if err := json.Unmarshal(v, &rel); err != nil {
			decodeErr = fmt.Errorf("provenance: decode %s: %w", k, err)
			return false
		}
		out = append(out, rel)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, decodeErr
}

// Sources returns the transitive wasDerivedFrom ancestry of an entity —
// where-provenance: the sources this artifact ultimately came from.
func (j *Journal) Sources(entity string) ([]string, error) {
	rels, err := j.Relations()
	if err != nil {
		return nil, err
	}
	parents := map[string][]string{}
	for _, r := range rels {
		if r.Type == WasDerivedFrom {
			parents[r.Subject] = append(parents[r.Subject], r.Object)
		}
	}
	var out []string
	seen := map[string]bool{entity: true}
	queue := []string{entity}
	for qi := 0; qi < len(queue); qi++ {
		for _, p := range parents[queue[qi]] {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				queue = append(queue, p)
			}
		}
	}
	return out, nil
}

// Explanation is why-provenance for an entity: the activity that generated
// it, the entities that activity used, and the responsible agents.
type Explanation struct {
	Entity     string
	Activity   string
	UsedInputs []string
	Agents     []string
}

// Why explains how an entity came to be.
func (j *Journal) Why(entity string) (*Explanation, error) {
	if _, err := j.Get(entity); err != nil {
		return nil, err
	}
	rels, err := j.Relations()
	if err != nil {
		return nil, err
	}
	ex := &Explanation{Entity: entity}
	for _, r := range rels {
		if r.Type == WasGeneratedBy && r.Subject == entity {
			ex.Activity = r.Object
		}
		if r.Type == WasAttributedTo && r.Subject == entity {
			ex.Agents = append(ex.Agents, r.Object)
		}
	}
	if ex.Activity != "" {
		for _, r := range rels {
			if r.Type == Used && r.Subject == ex.Activity {
				ex.UsedInputs = append(ex.UsedInputs, r.Object)
			}
		}
	}
	sort.Strings(ex.UsedInputs)
	sort.Strings(ex.Agents)
	return ex, nil
}

// GraphHash computes a canonical digest of a version graph: the citation
// anchor. Any change to nodes or edges changes the hash; node and edge order
// do not.
func GraphHash(g *version.Graph) string {
	nodes := append([]string(nil), g.Nodes...)
	sort.Strings(nodes)
	type edgeKey struct{ p, c, t string }
	edges := make([]edgeKey, 0, len(g.Edges))
	for _, e := range g.Edges {
		edges = append(edges, edgeKey{e.Parent, e.Child, e.Transform})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].p != edges[j].p {
			return edges[i].p < edges[j].p
		}
		if edges[i].c != edges[j].c {
			return edges[i].c < edges[j].c
		}
		return edges[i].t < edges[j].t
	})
	h := sha256.New()
	for _, n := range nodes {
		fmt.Fprintf(h, "n:%s\n", n)
	}
	for _, e := range edges {
		fmt.Fprintf(h, "e:%s>%s:%s\n", e.p, e.c, e.t)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Citation is a reproducible reference to a model at a specific version-
// graph snapshot, per the paper: "the platform would refer to its versioning
// graph and generate a citation with the model version and timestamp of the
// graph. Upon any updates of the graph, a new citation would be generated."
type Citation struct {
	ModelID   string `json:"model_id"`
	ModelName string `json:"model_name"`
	Version   string `json:"version"`
	GraphHash string `json:"graph_hash"`
	Snapshot  uint64 `json:"snapshot"` // logical lake time of the graph
}

// Cite builds a citation for a model against the current version graph.
func Cite(modelID, name, ver string, g *version.Graph, snapshot uint64) Citation {
	return Citation{
		ModelID:   modelID,
		ModelName: name,
		Version:   ver,
		GraphHash: GraphHash(g),
		Snapshot:  snapshot,
	}
}

// String renders the citation.
func (c Citation) String() string {
	short := c.GraphHash
	if len(short) > 12 {
		short = short[:12]
	}
	return fmt.Sprintf("%s v%s (%s), model-lake graph %s @ t%d",
		c.ModelName, c.Version, c.ModelID, short, c.Snapshot)
}

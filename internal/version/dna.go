package version

import (
	"fmt"

	"modellake/internal/embedding"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/tensor"
)

// DNA implements a "Model DNA" encoder in the spirit of Mu et al. (cited in
// §4): a compact representation combining a data-driven component (the
// model's behaviour on a shared probe set) with a model-driven component (a
// sketch of its weights). Two models descended from one another have similar
// DNA; the encoding also supports the pre-trained-version test when raw
// weight distances are unavailable or unreliable.
type DNA struct {
	weight   *embedding.WeightEmbedder
	behavior *embedding.BehaviorEmbedder
}

// NewDNA builds an encoder for models with the given input dimension. All
// encodings from the same (inputDim, seed) are comparable.
func NewDNA(inputDim int, seed uint64) *DNA {
	return &DNA{
		weight:   embedding.NewWeightEmbedder(32, 4, seed),
		behavior: embedding.NewBehaviorEmbedder(inputDim, 32, 8, seed+1),
	}
}

// Encode returns the model's DNA vector: the L2-normalized weight sketch
// concatenated with the L2-normalized behavioural sketch.
func (d *DNA) Encode(net *nn.MLP) (tensor.Vector, error) {
	if net == nil {
		return nil, fmt.Errorf("version: DNA of nil model")
	}
	h := model.NewHandle(&model.Model{ID: "dna", Net: net})
	wv, err := d.weight.Embed(h)
	if err != nil {
		return nil, fmt.Errorf("version: DNA weight component: %w", err)
	}
	bv, err := d.behavior.Embed(h)
	if err != nil {
		return nil, fmt.Errorf("version: DNA behaviour component: %w", err)
	}
	wv = wv.Clone()
	wv.Normalize()
	bv = bv.Clone()
	bv.Normalize()
	return append(wv, bv...), nil
}

// Distance returns the Euclidean distance between two models' DNA.
func (d *DNA) Distance(a, b *nn.MLP) (float64, error) {
	av, err := d.Encode(a)
	if err != nil {
		return 0, err
	}
	bv, err := d.Encode(b)
	if err != nil {
		return 0, err
	}
	return tensor.L2Distance(av, bv), nil
}

// IsPretrainedVersion answers Mu et al.'s question — is candidate the
// pre-trained source of target? — using DNA distance plus the generation
// heuristic. Unlike raw weight distance, DNA works across architectures
// (both components fold into fixed dimensions), though direction still
// requires same-architecture norms when h is NormDrift.
func (d *DNA) IsPretrainedVersion(candidate, target *nn.MLP, maxDistance float64, h DirectionHeuristic) (bool, error) {
	if h == nil {
		h = NormDrift{}
	}
	dist, err := d.Distance(candidate, target)
	if err != nil {
		return false, err
	}
	if dist > maxDistance {
		return false, nil
	}
	return h.Score(candidate) <= h.Score(target), nil
}

// DNADistanceFn adapts the encoder to Config.DistanceFn for graph
// reconstruction over DNA space instead of raw weight space. Encodings are
// memoized per *nn.MLP pointer, so reconstruction stays O(n) encodings.
func (d *DNA) DNADistanceFn() func(a, b *nn.MLP) (float64, error) {
	cache := map[*nn.MLP]tensor.Vector{}
	get := func(m *nn.MLP) (tensor.Vector, error) {
		if v, ok := cache[m]; ok {
			return v, nil
		}
		v, err := d.Encode(m)
		if err != nil {
			return nil, err
		}
		cache[m] = v
		return v, nil
	}
	return func(a, b *nn.MLP) (float64, error) {
		av, err := get(a)
		if err != nil {
			return 0, err
		}
		bv, err := get(b)
		if err != nil {
			return 0, err
		}
		return tensor.L2Distance(av, bv), nil
	}
}

package version

import (
	"errors"
	"fmt"
	"testing"

	"modellake/internal/lakegen"
	"modellake/internal/nn"
	"modellake/internal/xrand"
)

func popNodes(t *testing.T, pop *lakegen.Population) []Node {
	t.Helper()
	nodes := make([]Node, len(pop.Members))
	for i, m := range pop.Members {
		nodes[i] = Node{ID: fmt.Sprintf("n%d", i), Net: m.Model.Net}
	}
	return nodes
}

func truthEdges(pop *lakegen.Population) map[[2]string]bool {
	want := map[[2]string]bool{}
	for _, e := range pop.Edges {
		want[[2]string{fmt.Sprintf("n%d", e.Parent), fmt.Sprintf("n%d", e.Child)}] = true
	}
	return want
}

func generate(t *testing.T, seed uint64, bases, children int) *lakegen.Population {
	t.Helper()
	s := lakegen.DefaultSpec(seed)
	s.NumBases = bases
	s.ChildrenPerBase = children
	pop, err := lakegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestReconstructRecoversLineage(t *testing.T) {
	pop := generate(t, 11, 4, 6)
	g, err := Reconstruct(popNodes(t, pop), Config{ClassifyEdges: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateEdges(g.Edges, truthEdges(pop))
	if res.F1 < 0.6 {
		t.Fatalf("reconstruction F1 = %.2f (P=%.2f R=%.2f), want >= 0.6",
			res.F1, res.Precision, res.Recall)
	}
}

func TestReconstructBeatsRandomBaseline(t *testing.T) {
	pop := generate(t, 12, 3, 6)
	nodes := popNodes(t, pop)
	g, err := Reconstruct(nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	truth := truthEdges(pop)
	got := EvaluateEdges(g.Edges, truth)

	// Random graph with the same number of edges.
	rng := xrand.New(99)
	var randomEdges []Edge
	for i := 0; i < len(g.Edges); i++ {
		a, b := rng.Intn(len(nodes)), rng.Intn(len(nodes))
		if a == b {
			continue
		}
		randomEdges = append(randomEdges, Edge{Parent: nodes[a].ID, Child: nodes[b].ID})
	}
	random := EvaluateEdges(randomEdges, truth)
	if got.F1 <= random.F1+0.2 {
		t.Fatalf("reconstruction F1 %.2f not clearly better than random %.2f", got.F1, random.F1)
	}
}

func TestSeparatesUnrelatedFamilies(t *testing.T) {
	// Families share architecture but must not be linked.
	pop := generate(t, 13, 3, 4)
	g, err := Reconstruct(popNodes(t, pop), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cross := 0
	for _, e := range g.Edges {
		var pi, ci int
		fmt.Sscanf(e.Parent, "n%d", &pi)
		fmt.Sscanf(e.Child, "n%d", &ci)
		if pop.Members[pi].Truth.Family != pop.Members[ci].Truth.Family {
			cross++
		}
	}
	if frac := float64(cross) / float64(len(g.Edges)+1); frac > 0.15 {
		t.Fatalf("%d/%d edges cross families", cross, len(g.Edges))
	}
}

func TestEdgeClassification(t *testing.T) {
	pop := generate(t, 14, 4, 8)
	g, err := Reconstruct(popNodes(t, pop), Config{ClassifyEdges: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	truth := pop.TrueEdgeSet()
	correct, total := 0, 0
	for _, e := range g.Edges {
		var pi, ci int
		fmt.Sscanf(e.Parent, "n%d", &pi)
		fmt.Sscanf(e.Child, "n%d", &ci)
		wantTransform, ok := truth[[2]int{pi, ci}]
		if !ok {
			continue // only grade correctly recovered edges
		}
		total++
		if e.Transform == wantTransform {
			correct++
		}
	}
	if total == 0 {
		t.Fatal("no true edges recovered to grade")
	}
	if acc := float64(correct) / float64(total); acc < 0.6 {
		t.Fatalf("edge-type accuracy = %.2f (%d/%d), want >= 0.6", acc, correct, total)
	}
}

func TestDirectionHeuristicAblation(t *testing.T) {
	// NormDrift should not lose to KurtosisDrift on this model class.
	pop := generate(t, 15, 3, 6)
	nodes := popNodes(t, pop)
	truth := truthEdges(pop)
	norm, err := Reconstruct(nodes, Config{Heuristic: NormDrift{}})
	if err != nil {
		t.Fatal(err)
	}
	kurt, err := Reconstruct(nodes, Config{Heuristic: KurtosisDrift{}})
	if err != nil {
		t.Fatal(err)
	}
	fN := EvaluateEdges(norm.Edges, truth).F1
	fK := EvaluateEdges(kurt.Edges, truth).F1
	if fN+0.05 < fK {
		t.Fatalf("NormDrift F1 %.2f unexpectedly below KurtosisDrift %.2f", fN, fK)
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(nil, Config{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("expected ErrNoNodes, got %v", err)
	}
	net := nn.NewMLP([]int{2, 3, 2}, nn.ReLU, xrand.New(1))
	if _, err := Reconstruct([]Node{{ID: "a", Net: nil}}, Config{}); err == nil {
		t.Fatal("expected error for weightless node")
	}
	dup := []Node{{ID: "a", Net: net}, {ID: "a", Net: net.Clone()}}
	if _, err := Reconstruct(dup, Config{}); err == nil {
		t.Fatal("expected duplicate-id error")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	net := nn.NewMLP([]int{2, 3, 2}, nn.ReLU, xrand.New(1))
	g, err := Reconstruct([]Node{{ID: "only", Net: net}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 0 || len(g.Nodes) != 1 {
		t.Fatalf("singleton graph: %+v", g)
	}
}

func TestIsSourceOf(t *testing.T) {
	pop := generate(t, 16, 2, 4)
	var parent, child *nn.MLP
	for _, e := range pop.Edges {
		parent = pop.Members[e.Parent].Model.Net
		child = pop.Members[e.Child].Model.Net
		break
	}
	ok, err := IsSourceOf(parent, child, 1e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("true parent not recognized as source")
	}
	// Unrelated model from another family is not a source under a sane
	// distance budget.
	var unrelated *nn.MLP
	for _, m := range pop.Members {
		if m.Truth.Family != pop.Members[pop.Edges[0].Child].Truth.Family {
			unrelated = m.Model.Net
			break
		}
	}
	d, _ := nn.WeightDistance(parent, child)
	ok, err = IsSourceOf(unrelated, child, d*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unrelated model accepted as source")
	}
	// Architecture mismatch is never a source.
	other := nn.NewMLP([]int{3, 4, 2}, nn.ReLU, xrand.New(9))
	ok, err = IsSourceOf(other, child, 1e9, nil)
	if err != nil || ok {
		t.Fatalf("cross-arch source: %v %v", ok, err)
	}
}

func TestDescendantsAndParents(t *testing.T) {
	g := &Graph{
		Nodes: []string{"a", "b", "c", "d"},
		Edges: []Edge{
			{Parent: "a", Child: "b"},
			{Parent: "b", Child: "c"},
			{Parent: "a", Child: "d"},
		},
	}
	desc := g.Descendants("a")
	if len(desc) != 3 {
		t.Fatalf("Descendants(a) = %v", desc)
	}
	if got := g.Descendants("c"); len(got) != 0 {
		t.Fatalf("Descendants(leaf) = %v", got)
	}
	if p := g.Parents("c"); len(p) != 1 || p[0] != "b" {
		t.Fatalf("Parents(c) = %v", p)
	}
}

func TestEvaluateEdgesExact(t *testing.T) {
	want := map[[2]string]bool{{"a", "b"}: true, {"b", "c"}: true}
	got := []Edge{{Parent: "a", Child: "b"}, {Parent: "c", Child: "b"}}
	res := EvaluateEdges(got, want)
	if res.TruePositives != 1 || res.FalsePositives != 1 || res.FalseNegatives != 1 {
		t.Fatalf("unexpected eval: %+v", res)
	}
	if res.Precision != 0.5 || res.Recall != 0.5 || res.F1 != 0.5 {
		t.Fatalf("P/R/F1 = %v/%v/%v", res.Precision, res.Recall, res.F1)
	}
	empty := EvaluateEdges(nil, map[[2]string]bool{})
	if empty.F1 != 0 {
		t.Fatalf("empty eval F1 = %v", empty.F1)
	}
}

func BenchmarkReconstruct50Models(b *testing.B) {
	s := lakegen.DefaultSpec(20)
	s.NumBases = 5
	s.ChildrenPerBase = 9
	pop, err := lakegen.Generate(s)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]Node, len(pop.Members))
	for i, m := range pop.Members {
		nodes[i] = Node{ID: fmt.Sprintf("n%d", i), Net: m.Model.Net}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(nodes, Config{ClassifyEdges: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: for any generated lake, the reconstructed graph (before stitch
// augmentation) is a forest oriented away from roots — every node has at
// most one parent and there are no cycles.
func TestReconstructionIsForestProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		pop := generate(t, 100+seed, 3, 5)
		g, err := Reconstruct(popNodes(t, pop), Config{})
		if err != nil {
			t.Fatal(err)
		}
		parents := map[string][]string{}
		children := map[string][]string{}
		for _, e := range g.Edges {
			parents[e.Child] = append(parents[e.Child], e.Parent)
			children[e.Parent] = append(children[e.Parent], e.Child)
		}
		for node, ps := range parents {
			if len(ps) > 1 {
				t.Fatalf("seed %d: node %s has %d parents (unclassified graph must be a forest)",
					seed, node, len(ps))
			}
		}
		// Cycle check: BFS from every root must visit each node at most once
		// and edges+roots must cover all nodes reachable.
		visited := map[string]bool{}
		var walk func(n string) bool
		walk = func(n string) bool {
			if visited[n] {
				return false
			}
			visited[n] = true
			for _, c := range children[n] {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		for _, n := range g.Nodes {
			if len(parents[n]) == 0 {
				if !walk(n) {
					t.Fatalf("seed %d: cycle detected from root %s", seed, n)
				}
			}
		}
		for _, n := range g.Nodes {
			if len(parents[n]) > 0 && !visited[n] {
				t.Fatalf("seed %d: node %s unreachable from any root (cycle)", seed, n)
			}
		}
	}
}

// Package version implements the model-versioning task of §3: given a set of
// models, reconstruct the directed Model Graph whose edges say "this model is
// a version of that one", label each edge with the transformation that
// produced it, and answer the is-source-of question for model pairs.
//
// The reconstruction follows the weight-similarity approach of Horwitz et
// al.'s Model Tree Heritage Recovery, adapted to this lake:
//
//  1. Models are grouped by architecture (versions share f*).
//  2. Within a group, a minimum spanning forest is built over pairwise
//     weight distances, cutting edges that are far beyond the local scale
//     (different families that merely share an architecture).
//  3. Each tree is rooted at the node with the lowest generation score from
//     a pluggable DirectionHeuristic and oriented away from the root.
//     The default heuristic is weight-norm drift — continued training tends
//     to grow parameter norms — with weight kurtosis (MoTHer's statistic)
//     available as an ablation.
//  4. Edges are labeled by inspecting the weight delta: rank-1 final-layer
//     deltas are edits, low-rank single-layer deltas are LoRA merges, dense
//     multi-layer deltas are fine-tuning, and exact complementary layer
//     sharing with a second model is stitching (which also adds the second
//     parent edge).
package version

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// Node is one model presented to the reconstructor; intrinsics are required.
type Node struct {
	ID  string
	Net *nn.MLP
}

// Edge is a directed version edge parent → child.
type Edge struct {
	Parent, Child string
	Transform     string  // labeled transformation (Transform* constants)
	Distance      float64 // weight distance along the edge
}

// Graph is a reconstructed Model Graph.
type Graph struct {
	Nodes []string
	Edges []Edge
}

// DirectionHeuristic scores a model's "generation": children should score
// higher than their parents.
type DirectionHeuristic interface {
	Name() string
	Score(net *nn.MLP) float64
}

// NormDrift scores by the L2 norm of the flattened parameters. Continued
// training (fine-tuning, adapters) tends to increase parameter norm, so
// later generations score higher.
type NormDrift struct{}

// Name implements DirectionHeuristic.
func (NormDrift) Name() string { return "norm-drift" }

// Score implements DirectionHeuristic.
func (NormDrift) Score(net *nn.MLP) float64 { return net.FlattenWeights().Norm() }

// KurtosisDrift scores by the excess kurtosis of the flattened parameters —
// the statistic Horwitz et al. observed to grow monotonically under
// fine-tuning of large transformers. On this repository's small MLPs it is a
// much weaker signal than NormDrift; it is kept as an ablation.
type KurtosisDrift struct{}

// Name implements DirectionHeuristic.
func (KurtosisDrift) Name() string { return "kurtosis-drift" }

// Score implements DirectionHeuristic.
func (KurtosisDrift) Score(net *nn.MLP) float64 {
	return tensor.Summarize(net.FlattenWeights()).Kurtosis
}

// Config tunes reconstruction.
type Config struct {
	// Heuristic orients trees; nil selects NormDrift.
	Heuristic DirectionHeuristic
	// CutFactor drops spanning edges longer than CutFactor × the median
	// accepted edge length, splitting unrelated families. <= 0 selects 4.
	CutFactor float64
	// ClassifyEdges labels each edge's transformation (slightly more work).
	ClassifyEdges bool
	// Seed drives the randomized rank estimation used by classification.
	Seed uint64
	// DistanceFn overrides the pairwise model distance (default: L2 over
	// flattened weights). Use DNA.DNADistanceFn for Model-DNA space.
	DistanceFn func(a, b *nn.MLP) (float64, error)
}

func (c Config) withDefaults() Config {
	if c.Heuristic == nil {
		c.Heuristic = NormDrift{}
	}
	if c.CutFactor <= 0 {
		c.CutFactor = 4
	}
	return c
}

// ErrNoNodes reports an empty reconstruction input.
var ErrNoNodes = errors.New("version: no nodes")

// Reconstruct builds the Model Graph for the given nodes.
func Reconstruct(nodes []Node, cfg Config) (*Graph, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	cfg = cfg.withDefaults()
	g := &Graph{}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.Net == nil {
			return nil, fmt.Errorf("version: node %s has no weights", n.ID)
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("version: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		g.Nodes = append(g.Nodes, n.ID)
	}

	// Group by architecture.
	groups := map[string][]int{}
	for i, n := range nodes {
		arch := n.Net.ArchString()
		groups[arch] = append(groups[arch], i)
	}
	archs := make([]string, 0, len(groups))
	for a := range groups {
		archs = append(archs, a)
	}
	sort.Strings(archs)

	for _, arch := range archs {
		idxs := groups[arch]
		if len(idxs) < 2 {
			continue
		}
		edges, err := reconstructGroup(nodes, idxs, cfg)
		if err != nil {
			return nil, err
		}
		g.Edges = append(g.Edges, edges...)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].Parent != g.Edges[j].Parent {
			return g.Edges[i].Parent < g.Edges[j].Parent
		}
		return g.Edges[i].Child < g.Edges[j].Child
	})
	return g, nil
}

// reconstructGroup runs MST + orientation + labeling for one architecture
// group (indices into nodes).
func reconstructGroup(nodes []Node, idxs []int, cfg Config) ([]Edge, error) {
	n := len(idxs)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	if cfg.DistanceFn != nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d, err := cfg.DistanceFn(nodes[idxs[i]].Net, nodes[idxs[j]].Net)
				if err != nil {
					return nil, fmt.Errorf("version: distance(%s, %s): %w",
						nodes[idxs[i]].ID, nodes[idxs[j]].ID, err)
				}
				dist[i][j], dist[j][i] = d, d
			}
		}
	} else {
		flat := make([]tensor.Vector, n)
		for i, idx := range idxs {
			flat[i] = nodes[idx].Net.FlattenWeights()
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d := tensor.L2Distance(flat[i], flat[j])
				dist[i][j], dist[j][i] = d, d
			}
		}
	}

	// Prim's MST.
	inTree := make([]bool, n)
	bestDist := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestDist[j] = dist[0][j]
		bestFrom[j] = 0
	}
	type mstEdge struct {
		a, b int
		d    float64
	}
	var mst []mstEdge
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick < 0 || bestDist[j] < bestDist[pick]) {
				pick = j
			}
		}
		mst = append(mst, mstEdge{a: bestFrom[pick], b: pick, d: bestDist[pick]})
		inTree[pick] = true
		for j := 0; j < n; j++ {
			if !inTree[j] && dist[pick][j] < bestDist[j] {
				bestDist[j] = dist[pick][j]
				bestFrom[j] = pick
			}
		}
	}

	// Cut implausibly long edges: different families sharing an arch.
	ds := make([]float64, len(mst))
	for i, e := range mst {
		ds[i] = e.d
	}
	sort.Float64s(ds)
	median := 0.0
	if len(ds) > 0 {
		median = ds[len(ds)/2]
	}
	cut := cfg.CutFactor * median
	adj := make([][]int, n) // adjacency over kept MST edges (index into mst)
	kept := make([]bool, len(mst))
	for i, e := range mst {
		if median > 0 && e.d > cut {
			continue
		}
		kept[i] = true
		adj[e.a] = append(adj[e.a], i)
		adj[e.b] = append(adj[e.b], i)
	}

	// Orient each connected component from its lowest-scoring node.
	scores := make([]float64, n)
	for i, idx := range idxs {
		scores[i] = cfg.Heuristic.Score(nodes[idx].Net)
	}
	visited := make([]bool, n)
	var out []Edge
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Collect the component.
		comp := []int{start}
		visited[start] = true
		for qi := 0; qi < len(comp); qi++ {
			u := comp[qi]
			for _, ei := range adj[u] {
				v := mst[ei].a + mst[ei].b - u
				if !visited[v] {
					visited[v] = true
					comp = append(comp, v)
				}
			}
		}
		// Root = lowest generation score.
		root := comp[0]
		for _, u := range comp {
			if scores[u] < scores[root] {
				root = u
			}
		}
		// BFS orientation away from the root.
		seen := map[int]bool{root: true}
		queue := []int{root}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ei := range adj[u] {
				v := mst[ei].a + mst[ei].b - u
				if seen[v] {
					continue
				}
				seen[v] = true
				queue = append(queue, v)
				out = append(out, Edge{
					Parent:   nodes[idxs[u]].ID,
					Child:    nodes[idxs[v]].ID,
					Distance: mst[ei].d,
				})
			}
		}
	}

	if cfg.ClassifyEdges {
		rng := xrand.New(cfg.Seed).Child("rank")
		byID := map[string]int{}
		for i, idx := range idxs {
			byID[nodes[idx].ID] = i
		}
		for i := range out {
			p := nodes[idxs[byID[out[i].Parent]]].Net
			c := nodes[idxs[byID[out[i].Child]]].Net
			out[i].Transform = classifyDelta(p, c, rng)
		}
		// Stitch second parents: a child whose delta vs its parent leaves
		// some layers exactly intact may share the changed layers exactly
		// with another group member.
		out = append(out, stitchEdges(nodes, idxs, out, byID)...)
	}
	return out, nil
}

// classifyDelta labels the transformation that turned parent into child.
func classifyDelta(parent, child *nn.MLP, rng *xrand.RNG) string {
	L := parent.LayerCount()
	changed := make([]int, 0, L)
	var deltas []tensor.Matrix
	for l := 0; l < L; l++ {
		d := tensor.Sub(child.W[l], parent.W[l])
		deltas = append(deltas, d)
		ref := parent.W[l].FrobeniusNorm()
		if ref == 0 {
			ref = 1
		}
		if d.FrobeniusNorm() > 1e-9*ref {
			changed = append(changed, l)
		}
	}
	switch len(changed) {
	case 0:
		return "identical"
	case 1:
		l := changed[0]
		sv := tensor.TopSingularValues(deltas[l], 4, 50, rng)
		rank := tensor.EffectiveRank(sv, 1e-4)
		if rank <= 1 && l == L-1 {
			return model.TransformEdit
		}
		if rank <= 2 {
			return model.TransformLoRA
		}
		return model.TransformFinetune
	default:
		return model.TransformFinetune
	}
}

// stitchEdges finds second parents for stitched children: children that
// share some layers exactly with their recovered parent and the remaining
// layers exactly with another node.
func stitchEdges(nodes []Node, idxs []int, edges []Edge, byID map[string]int) []Edge {
	var extra []Edge
	for ei := range edges {
		e := &edges[ei]
		p := nodes[idxs[byID[e.Parent]]].Net
		c := nodes[idxs[byID[e.Child]]].Net
		L := p.LayerCount()
		// Layers the child shares exactly with its recovered parent.
		shared := make([]bool, L)
		anyShared, anyChanged := false, false
		for l := 0; l < L; l++ {
			if tensor.Sub(c.W[l], p.W[l]).FrobeniusNorm() == 0 {
				shared[l] = true
				anyShared = true
			} else {
				anyChanged = true
			}
		}
		if !anyShared || !anyChanged {
			continue
		}
		// Does another node own the changed layers exactly?
		for _, j := range idxs {
			other := nodes[j]
			if other.ID == e.Parent || other.ID == e.Child {
				continue
			}
			if other.Net.LayerCount() != L {
				continue
			}
			matchesAllChanged := true
			for l := 0; l < L; l++ {
				if shared[l] {
					continue
				}
				if tensor.Sub(c.W[l], other.Net.W[l]).FrobeniusNorm() != 0 {
					matchesAllChanged = false
					break
				}
			}
			if matchesAllChanged {
				e.Transform = model.TransformStitch
				extra = append(extra, Edge{
					Parent:    other.ID,
					Child:     e.Child,
					Transform: model.TransformStitch,
				})
				break
			}
		}
	}
	return extra
}

// IsSourceOf answers the paper's versioning question: is candidate (θc) a
// source of target (θt)? It holds when the two models share an architecture,
// their weight distance is within maxDistance, and the direction heuristic
// orders candidate before target.
func IsSourceOf(candidate, target *nn.MLP, maxDistance float64, h DirectionHeuristic) (bool, error) {
	if h == nil {
		h = NormDrift{}
	}
	d, err := nn.WeightDistance(candidate, target)
	if err != nil {
		return false, nil // different architectures: not a source in our model class
	}
	if d > maxDistance {
		return false, nil
	}
	return h.Score(candidate) <= h.Score(target), nil
}

// EvalResult reports edge precision/recall/F1 of a reconstructed graph
// against ground truth.
type EvalResult struct {
	Precision, Recall, F1 float64
	TruePositives         int
	FalsePositives        int
	FalseNegatives        int
}

// EvaluateEdges compares directed (parent, child) pairs, ignoring labels.
func EvaluateEdges(got []Edge, want map[[2]string]bool) EvalResult {
	var res EvalResult
	gotSet := map[[2]string]bool{}
	for _, e := range got {
		gotSet[[2]string{e.Parent, e.Child}] = true
	}
	for k := range gotSet {
		if want[k] {
			res.TruePositives++
		} else {
			res.FalsePositives++
		}
	}
	for k := range want {
		if !gotSet[k] {
			res.FalseNegatives++
		}
	}
	if res.TruePositives+res.FalsePositives > 0 {
		res.Precision = float64(res.TruePositives) / float64(res.TruePositives+res.FalsePositives)
	}
	if res.TruePositives+res.FalseNegatives > 0 {
		res.Recall = float64(res.TruePositives) / float64(res.TruePositives+res.FalseNegatives)
	}
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}

// Descendants returns all transitive children of id in the graph, in BFS
// order — used by audit risk propagation.
func (g *Graph) Descendants(id string) []string {
	children := map[string][]string{}
	for _, e := range g.Edges {
		children[e.Parent] = append(children[e.Parent], e.Child)
	}
	var out []string
	seen := map[string]bool{id: true}
	queue := []string{id}
	for qi := 0; qi < len(queue); qi++ {
		for _, c := range children[queue[qi]] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
				queue = append(queue, c)
			}
		}
	}
	return out
}

// Ancestors returns all transitive parents of id in BFS order — the models
// id was (directly or indirectly) derived from.
func (g *Graph) Ancestors(id string) []string {
	parents := map[string][]string{}
	for _, e := range g.Edges {
		parents[e.Child] = append(parents[e.Child], e.Parent)
	}
	var out []string
	seen := map[string]bool{id: true}
	queue := []string{id}
	for qi := 0; qi < len(queue); qi++ {
		for _, p := range parents[queue[qi]] {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				queue = append(queue, p)
			}
		}
	}
	return out
}

// Parents returns the direct parents of id.
func (g *Graph) Parents(id string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.Child == id {
			out = append(out, e.Parent)
		}
	}
	return out
}

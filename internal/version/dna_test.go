package version

import (
	"fmt"
	"testing"

	"modellake/internal/nn"
	"modellake/internal/xrand"
)

func TestDNAEncodeShapeAndDeterminism(t *testing.T) {
	d := NewDNA(8, 1)
	net := nn.NewMLP([]int{8, 16, 3}, nn.ReLU, xrand.New(2))
	v1, err := d.Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewDNA(8, 1).Encode(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) == 0 || len(v1) != len(v2) {
		t.Fatalf("encodings length %d vs %d", len(v1), len(v2))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same-seed DNA encoders disagree")
		}
	}
	if _, err := d.Encode(nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestDNADistanceOrdersLineage(t *testing.T) {
	pop := generate(t, 61, 3, 5)
	d := NewDNA(pop.Spec.Dim, 3)
	violations, checked := 0, 0
	for _, e := range pop.Edges {
		child := pop.Members[e.Child].Model.Net
		parent := pop.Members[e.Parent].Model.Net
		dPar, err := d.Distance(child, parent)
		if err != nil {
			t.Fatal(err)
		}
		for i, other := range pop.Members {
			if pop.Members[i].Truth.Family == pop.Members[e.Child].Truth.Family {
				continue
			}
			dOther, err := d.Distance(child, other.Model.Net)
			if err != nil {
				t.Fatal(err)
			}
			checked++
			if dPar >= dOther {
				violations++
			}
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	if frac := float64(violations) / float64(checked); frac > 0.05 {
		t.Fatalf("DNA parent-proximity violated in %.1f%% of comparisons", frac*100)
	}
}

func TestDNAIsPretrainedVersion(t *testing.T) {
	pop := generate(t, 62, 2, 4)
	d := NewDNA(pop.Spec.Dim, 5)
	e := pop.Edges[0]
	parent := pop.Members[e.Parent].Model.Net
	child := pop.Members[e.Child].Model.Net
	ok, err := d.IsPretrainedVersion(parent, child, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("true pre-trained version not recognized")
	}
	var unrelated *nn.MLP
	for _, m := range pop.Members {
		if m.Truth.Family != pop.Members[e.Child].Truth.Family {
			unrelated = m.Model.Net
			break
		}
	}
	dist, err := d.Distance(parent, child)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = d.IsPretrainedVersion(unrelated, child, dist*2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unrelated model accepted as pre-trained version")
	}
}

func TestReconstructWithDNADistance(t *testing.T) {
	pop := generate(t, 63, 3, 6)
	nodes := popNodes(t, pop)
	d := NewDNA(pop.Spec.Dim, 7)
	g, err := Reconstruct(nodes, Config{DistanceFn: d.DNADistanceFn()})
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateEdges(g.Edges, truthEdges(pop))
	if res.F1 < 0.5 {
		t.Fatalf("DNA-space reconstruction F1 = %.2f, want >= 0.5", res.F1)
	}
}

func TestReconstructDistanceFnErrorPropagates(t *testing.T) {
	net := nn.NewMLP([]int{4, 6, 2}, nn.ReLU, xrand.New(1))
	nodes := []Node{{ID: "a", Net: net}, {ID: "b", Net: net.Clone()}}
	boom := func(a, b *nn.MLP) (float64, error) { return 0, fmt.Errorf("boom") }
	if _, err := Reconstruct(nodes, Config{DistanceFn: boom}); err == nil {
		t.Fatal("distance error swallowed")
	}
}

func TestDNADistanceFnMemoizes(t *testing.T) {
	pop := generate(t, 64, 2, 2)
	d := NewDNA(pop.Spec.Dim, 9)
	fn := d.DNADistanceFn()
	a := pop.Members[0].Model.Net
	b := pop.Members[1].Model.Net
	d1, err := fn(a, b)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := fn(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("memoized distance changed")
	}
}

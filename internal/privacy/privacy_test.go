package privacy

import (
	"math"
	"testing"

	"modellake/internal/attribution"
	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// noisySetup builds the memorization-prone task used by the membership
// experiments: overlapping classes + 25% label noise.
func noisySetup(seed uint64) (train, held *data.Dataset) {
	dom := data.NewDomain("priv", 8, 2, seed)
	train = dom.Sample("priv/train", 40, 3.0, xrand.New(seed+1))
	held = dom.Sample("priv/held", 40, 3.0, xrand.New(seed+2))
	rng := xrand.New(seed + 3)
	for i := range train.Y {
		if rng.Float64() < 0.25 {
			train.Y[i] = 1 - train.Y[i]
		}
	}
	return train, held
}

func TestTrainDPStillLearns(t *testing.T) {
	dom := data.NewDomain("dplearn", 8, 2, 1)
	ds := dom.Sample("dplearn/v1", 200, 0.5, xrand.New(2))
	m := nn.NewMLP([]int{8, 16, 2}, nn.ReLU, xrand.New(3))
	cfg := nn.TrainConfig{Epochs: 40, BatchSize: 16, LR: 0.1, Seed: 4}
	if _, err := TrainDP(m, ds, cfg, DPConfig{ClipNorm: 1.0, NoiseMultiplier: 0.3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(ds); acc < 0.85 {
		t.Fatalf("DP-SGD accuracy = %v, want >= 0.85 on an easy task", acc)
	}
}

func TestTrainDPReducesMembershipAUC(t *testing.T) {
	train, held := noisySetup(71)
	attack := func(dp *DPConfig) (float64, float64) {
		m := nn.NewMLP([]int{8, 64, 2}, nn.ReLU, xrand.New(74))
		cfg := nn.TrainConfig{Epochs: 300, BatchSize: 8, LR: 0.1, Seed: 75}
		var err error
		if dp == nil {
			_, err = nn.Train(m, train, cfg)
		} else {
			_, err = TrainDP(m, train, cfg, *dp)
		}
		if err != nil {
			t.Fatal(err)
		}
		auc, err := attribution.MembershipAUC(m, train, held)
		if err != nil {
			t.Fatal(err)
		}
		return auc, m.Accuracy(held)
	}
	plainAUC, _ := attack(nil)
	dpAUC, dpHeld := attack(&DPConfig{ClipNorm: 0.5, NoiseMultiplier: 1.0, Seed: 9})
	if dpAUC >= plainAUC-0.05 {
		t.Fatalf("DP-SGD did not reduce exposure: %v -> %v", plainAUC, dpAUC)
	}
	if dpHeld < 0.4 {
		t.Fatalf("DP-SGD destroyed utility: held-out accuracy %v", dpHeld)
	}
}

func TestTrainDPValidation(t *testing.T) {
	m := nn.NewMLP([]int{8, 8, 2}, nn.ReLU, xrand.New(1))
	dom := data.NewDomain("v", 8, 2, 1)
	ds := dom.Sample("v/1", 10, 0.5, xrand.New(2))
	cfg := nn.TrainConfig{Epochs: 1, LR: 0.1}
	if _, err := TrainDP(m, ds, cfg, DPConfig{ClipNorm: 0}); err == nil {
		t.Fatal("zero clip accepted")
	}
	if _, err := TrainDP(m, ds, cfg, DPConfig{ClipNorm: 1, NoiseMultiplier: -1}); err == nil {
		t.Fatal("negative noise accepted")
	}
	empty := &data.Dataset{X: tensor.NewMatrix(0, 8), NumClasses: 2}
	if _, err := TrainDP(m, empty, cfg, DPConfig{ClipNorm: 1}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	bad := data.NewDomain("w", 5, 2, 1).Sample("w/1", 10, 0.5, xrand.New(3))
	if _, err := TrainDP(m, bad, cfg, DPConfig{ClipNorm: 1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestTrainDPDeterministic(t *testing.T) {
	dom := data.NewDomain("det", 6, 2, 1)
	ds := dom.Sample("det/1", 60, 0.5, xrand.New(2))
	cfg := nn.TrainConfig{Epochs: 5, BatchSize: 8, LR: 0.1, Seed: 3}
	dp := DPConfig{ClipNorm: 1, NoiseMultiplier: 0.5, Seed: 4}
	m1 := nn.NewMLP([]int{6, 8, 2}, nn.ReLU, xrand.New(5))
	m2 := nn.NewMLP([]int{6, 8, 2}, nn.ReLU, xrand.New(5))
	if _, err := TrainDP(m1, ds, cfg, dp); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainDP(m2, ds, cfg, dp); err != nil {
		t.Fatal(err)
	}
	d, err := nn.WeightDistance(m1, m2)
	if err != nil || d != 0 {
		t.Fatalf("DP training not deterministic: %v %v", d, err)
	}
}

func TestMaskConfidence(t *testing.T) {
	p := tensor.Vector{0.9, 0.05, 0.05}
	masked, err := MaskConfidence(p, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if masked[0] != 0.6 {
		t.Fatalf("cap not applied: %v", masked)
	}
	if math.Abs(masked.Sum()-1) > 1e-12 {
		t.Fatalf("masked distribution does not sum to 1: %v", masked.Sum())
	}
	// Already-flat distribution untouched.
	flat := tensor.Vector{0.4, 0.3, 0.3}
	got, err := MaskConfidence(flat.Clone(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(got, flat) != 0 {
		t.Fatal("flat distribution modified")
	}
}

func TestMaskConfidenceValidation(t *testing.T) {
	if _, err := MaskConfidence(tensor.Vector{0.5, 0.5}, 0.4); err == nil {
		t.Fatal("maxConf below uniform accepted")
	}
	if _, err := MaskConfidence(tensor.Vector{0.5, 0.5}, 1.5); err == nil {
		t.Fatal("maxConf above 1 accepted")
	}
	if _, err := MaskConfidence(nil, 0.5); err != nil {
		t.Fatal("empty vector should be a no-op")
	}
}

func TestConfidenceMaskingFalseSenseOfPrivacy(t *testing.T) {
	// The paper (citing Xin et al., "A False Sense of Privacy") warns that
	// surface-level defences can leave leakage intact. We observe exactly
	// that: a moderate confidence cap barely moves the attack's AUC, while
	// only a near-uniform cap — which destroys the scores' information —
	// actually defends.
	train, held := noisySetup(91)
	m := nn.NewMLP([]int{8, 64, 2}, nn.ReLU, xrand.New(92))
	cfg := nn.TrainConfig{Epochs: 300, BatchSize: 8, LR: 0.1, Seed: 93}
	if _, err := nn.Train(m, train, cfg); err != nil {
		t.Fatal(err)
	}
	plainAUC, err := attribution.MembershipAUC(m, train, held)
	if err != nil {
		t.Fatal(err)
	}
	// Even a near-uniform cap cannot hide *which examples the model gets
	// right* — the label-only leakage channel — so the attack survives all
	// masking strengths. This is the precise sense in which output-side
	// sanitization gives a false sense of privacy; contrast with
	// TestTrainDPReducesMembershipAUC, where training-side DP does work.
	for _, cap := range []float64{0.9, 0.51} {
		def := &Defended{Net: m, MaxConf: cap}
		defAUC, err := MembershipAUCDefended(def, train, held)
		if err != nil {
			t.Fatal(err)
		}
		if defAUC < plainAUC-0.1 {
			t.Fatalf("masking at cap %v unexpectedly defended: %v -> %v (false-sense claim broken)",
				cap, plainAUC, defAUC)
		}
	}
	aggressive := &Defended{Net: m, MaxConf: 0.51}
	// Argmax predictions are preserved even by aggressive masking (the cap
	// stays above uniform).
	for i := 0; i < held.Len(); i++ {
		x, _ := held.Example(i)
		p, err := aggressive.Probs(x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if p.ArgMax() != m.Predict(x) {
			t.Fatal("masking changed the prediction")
		}
	}
}

func TestMembershipAUCDefendedValidation(t *testing.T) {
	m := nn.NewMLP([]int{8, 8, 2}, nn.ReLU, xrand.New(1))
	def := &Defended{Net: m, MaxConf: 0.9}
	empty := &data.Dataset{X: tensor.NewMatrix(0, 8), NumClasses: 2}
	ds := data.NewDomain("x", 8, 2, 1).Sample("x/1", 5, 0.5, xrand.New(2))
	if _, err := MembershipAUCDefended(def, empty, ds); err == nil {
		t.Fatal("empty members accepted")
	}
}

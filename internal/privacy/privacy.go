// Package privacy implements the defence side of the paper's §4 "Privacy
// and Safety" discussion: differentially private training (DP-SGD: per-
// example gradient clipping + calibrated Gaussian noise) and confidence
// masking of model outputs. The membership-inference attack in
// internal/attribution is the adversary these defences are measured against.
//
// The measured outcome mirrors the paper's caveat (citing "A False Sense of
// Privacy"): output-side confidence masking does not defend — the attack
// degrades gracefully into a label-only attack that masking cannot hide —
// while training-side DP-SGD genuinely lowers the attack's AUC at a utility
// cost.
package privacy

import (
	"fmt"
	"math"

	"modellake/internal/attribution"
	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// DPConfig parameterizes DP-SGD.
type DPConfig struct {
	// ClipNorm is the per-example gradient L2 bound C (required, > 0).
	ClipNorm float64
	// NoiseMultiplier is σ: Gaussian noise with std σ·C is added to each
	// batch gradient sum. 0 means clipping only.
	NoiseMultiplier float64
	// Seed drives the noise.
	Seed uint64
}

// TrainDP trains m with DP-SGD: every example's gradient is clipped to
// ClipNorm, the batch sum is perturbed with Gaussian noise of std
// NoiseMultiplier·ClipNorm per coordinate, and the average is applied with
// plain SGD. It returns the final mean training loss.
func TrainDP(m *nn.MLP, ds *data.Dataset, cfg nn.TrainConfig, dp DPConfig) (float64, error) {
	if ds.Len() == 0 {
		return 0, fmt.Errorf("privacy: empty dataset %q", ds.ID)
	}
	if ds.Dim() != m.InputDim() {
		return 0, fmt.Errorf("privacy: dataset dim %d != model input %d", ds.Dim(), m.InputDim())
	}
	if dp.ClipNorm <= 0 {
		return 0, fmt.Errorf("privacy: ClipNorm must be positive, got %v", dp.ClipNorm)
	}
	if dp.NoiseMultiplier < 0 {
		return 0, fmt.Errorf("privacy: negative NoiseMultiplier %v", dp.NoiseMultiplier)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	shuffleRNG := xrand.New(cfg.Seed)
	noiseRNG := xrand.New(dp.Seed).Child("dp-noise")

	sum := nn.NewGrads(m)
	exGrad := nn.NewGrads(m)
	lastLoss := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := shuffleRNG.Perm(ds.Len())
		total := 0.0
		for start := 0; start < len(perm); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			sum.Zero()
			for _, idx := range perm[start:end] {
				x, y := ds.Example(idx)
				exGrad.Zero()
				total += m.Backward(x, y, exGrad)
				clipInto(sum, exGrad, dp.ClipNorm)
			}
			// Gaussian mechanism on the clipped sum.
			if dp.NoiseMultiplier > 0 {
				std := dp.NoiseMultiplier * dp.ClipNorm
				addNoise(sum, std, noiseRNG)
			}
			inv := 1.0 / float64(end-start)
			for l := range sum.W {
				sum.W[l].Scale(inv)
				sum.B[l].Scale(inv)
				m.W[l].AddScaled(-cfg.LR, sum.W[l])
				m.B[l].AddScaled(-cfg.LR, sum.B[l])
			}
		}
		lastLoss = total / float64(ds.Len())
	}
	return lastLoss, nil
}

// clipInto adds g, rescaled so its global L2 norm is at most clip, into dst.
func clipInto(dst, g *nn.Grads, clip float64) {
	var sq float64
	for l := range g.W {
		for _, v := range g.W[l].Data {
			sq += v * v
		}
		for _, v := range g.B[l] {
			sq += v * v
		}
	}
	scale := 1.0
	if norm := math.Sqrt(sq); norm > clip {
		scale = clip / norm
	}
	for l := range g.W {
		dst.W[l].AddScaled(scale, g.W[l])
		dst.B[l].AddScaled(scale, g.B[l])
	}
}

func addNoise(g *nn.Grads, std float64, rng *xrand.RNG) {
	for l := range g.W {
		for i := range g.W[l].Data {
			g.W[l].Data[i] += std * rng.NormFloat64()
		}
		for i := range g.B[l] {
			g.B[l][i] += std * rng.NormFloat64()
		}
	}
}

// MaskConfidence clamps a probability vector so no class exceeds maxConf,
// redistributing the excess uniformly — the confidence-masking defence
// against loss-threshold membership attacks. The input is modified in place
// and returned. maxConf must lie in (1/len(p), 1].
func MaskConfidence(p tensor.Vector, maxConf float64) (tensor.Vector, error) {
	n := len(p)
	if n == 0 {
		return p, nil
	}
	if maxConf <= 1/float64(n) || maxConf > 1 {
		return nil, fmt.Errorf("privacy: maxConf %v out of (1/%d, 1]", maxConf, n)
	}
	excess := 0.0
	capped := 0
	for _, v := range p {
		if v > maxConf {
			excess += v - maxConf
			capped++
		}
	}
	if capped == 0 {
		return p, nil
	}
	share := excess / float64(n-capped)
	for i, v := range p {
		if v > maxConf {
			p[i] = maxConf
		} else {
			p[i] = v + share
		}
	}
	return p, nil
}

// Defended wraps a model so its observable behaviour has confidence masking
// applied — the deployment-side defence that leaves θ untouched.
type Defended struct {
	Net     *nn.MLP
	MaxConf float64
}

// Probs returns the masked output distribution.
func (d *Defended) Probs(x tensor.Vector) (tensor.Vector, error) {
	p := d.Net.Probs(x)
	return MaskConfidence(p, d.MaxConf)
}

// ExampleLoss is the cross-entropy under the masked distribution — what a
// loss-threshold attacker observes through the defended API.
func (d *Defended) ExampleLoss(x tensor.Vector, y int) (float64, error) {
	p, err := d.Probs(x)
	if err != nil {
		return 0, err
	}
	return nn.CrossEntropy(p, y), nil
}

// MembershipAUCDefended runs the loss-threshold attack against a defended
// model (mirrors attribution.MembershipAUC but observes masked losses).
func MembershipAUCDefended(d *Defended, members, nonMembers *data.Dataset) (float64, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return 0, fmt.Errorf("privacy: membership needs both member and non-member samples")
	}
	var scores []float64
	var labels []bool
	add := func(ds *data.Dataset, member bool) error {
		for i := 0; i < ds.Len(); i++ {
			x, y := ds.Example(i)
			loss, err := d.ExampleLoss(x, y)
			if err != nil {
				return err
			}
			scores = append(scores, -loss)
			labels = append(labels, member)
		}
		return nil
	}
	if err := add(members, true); err != nil {
		return 0, err
	}
	if err := add(nonMembers, false); err != nil {
		return 0, err
	}
	return attribution.AUC(scores, labels), nil
}

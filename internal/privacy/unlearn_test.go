package privacy

import (
	"testing"

	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/tensor"
	"modellake/internal/xrand"
)

// unlearnSetup trains a model on two sub-populations of the same domain and
// returns (model, forget, retain, nonMembers). The forget set is a shifted
// cluster so the model learns something specific about it.
func unlearnSetup(t *testing.T, seed uint64) (*nn.MLP, *data.Dataset, *data.Dataset, *data.Dataset) {
	t.Helper()
	base := data.NewDomain("ul", 8, 2, seed)
	shifted := base.Shifted("ul-forget", 2.5, seed+1)

	retain := base.Sample("ul/retain", 160, 0.5, xrand.New(seed+2))
	forget := shifted.Sample("ul/forget", 40, 0.5, xrand.New(seed+3))
	nonMembers := shifted.Sample("ul/held", 40, 0.5, xrand.New(seed+4))
	// The forget set carries *inverted* labels: knowledge that exists only
	// because the model memorized these exact examples, so unlearning has
	// something real to remove (the retained data would never imply it).
	for i := range forget.Y {
		forget.Y[i] = 1 - forget.Y[i]
	}
	for i := range nonMembers.Y {
		nonMembers.Y[i] = 1 - nonMembers.Y[i]
	}

	combined := concat(retain, forget)
	m := nn.NewMLP([]int{8, 32, 2}, nn.ReLU, xrand.New(seed+5))
	cfg := nn.TrainConfig{Epochs: 60, BatchSize: 16, LR: 0.1, Seed: seed + 6}
	if _, err := nn.Train(m, combined, cfg); err != nil {
		t.Fatal(err)
	}
	return m, forget, retain, nonMembers
}

// concat merges two datasets of identical shape.
func concat(a, b *data.Dataset) *data.Dataset {
	rows := a.Len() + b.Len()
	merged := &data.Dataset{
		ID: a.ID + "+" + b.ID, Domain: a.Domain, NumClasses: a.NumClasses,
		X: tensor.NewMatrix(rows, a.Dim()),
		Y: make([]int, 0, rows),
	}
	for i := 0; i < a.Len(); i++ {
		copy(merged.X.Row(i), a.X.Row(i))
	}
	for i := 0; i < b.Len(); i++ {
		copy(merged.X.Row(a.Len()+i), b.X.Row(i))
	}
	merged.Y = append(merged.Y, a.Y...)
	merged.Y = append(merged.Y, b.Y...)
	return merged
}

func TestUnlearnForgetsWhileRetaining(t *testing.T) {
	m, forget, retain, nonMembers := unlearnSetup(t, 301)
	res, err := Unlearn(m, forget, retain, nonMembers, UnlearnConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForgetAccBefore < 0.9 {
		t.Fatalf("model never learned the forget set: %v", res.ForgetAccBefore)
	}
	if res.ForgetAccAfter > 0.5 {
		t.Fatalf("forget accuracy did not drop: %v -> %v", res.ForgetAccBefore, res.ForgetAccAfter)
	}
	if res.RetainAccAfter < res.RetainAccBefore-0.1 {
		t.Fatalf("retain accuracy collapsed: %v -> %v", res.RetainAccBefore, res.RetainAccAfter)
	}
}

func TestUnlearnValidation(t *testing.T) {
	m, forget, retain, _ := unlearnSetup(t, 303)
	empty := &data.Dataset{X: tensor.NewMatrix(0, 8), NumClasses: 2}
	if _, err := Unlearn(m, empty, retain, nil, UnlearnConfig{}); err == nil {
		t.Fatal("empty forget set accepted")
	}
	if _, err := Unlearn(m, forget, empty, nil, UnlearnConfig{}); err == nil {
		t.Fatal("empty retain set accepted")
	}
	wrongDim := data.NewDomain("wd", 5, 2, 1).Sample("wd/1", 10, 0.5, xrand.New(2))
	if _, err := Unlearn(m, wrongDim, retain, nil, UnlearnConfig{}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestUnlearnWithoutNonMembersSkipsAUC(t *testing.T) {
	m, forget, retain, _ := unlearnSetup(t, 305)
	res, err := Unlearn(m, forget, retain, nil, UnlearnConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ForgetAUCBefore != 0 || res.ForgetAUCAfter != 0 {
		t.Fatalf("AUC measured without non-members: %+v", res)
	}
}

package privacy

import (
	"fmt"

	"modellake/internal/attribution"
	"modellake/internal/data"
	"modellake/internal/nn"
	"modellake/internal/xrand"
)

// UnlearnConfig tunes approximate machine unlearning.
type UnlearnConfig struct {
	// AscentEpochs of gradient *ascent* on the forget set (default 30 —
	// well-fit minima have small forget-set gradients, so escaping them
	// takes sustained ascent).
	AscentEpochs int
	// RepairEpochs of ordinary training on the retain set afterwards, to
	// restore utility the ascent damaged (default 5).
	RepairEpochs int
	LR           float64 // default 0.05
	Seed         uint64
}

// UnlearnResult reports the before/after state of an unlearning run.
type UnlearnResult struct {
	ForgetAccBefore, ForgetAccAfter float64
	RetainAccBefore, RetainAccAfter float64
	// ForgetAUCBefore/After are membership-inference AUCs over the forget
	// set vs the reference non-members — the privacy measure of whether the
	// forgotten data still leaves a trace.
	ForgetAUCBefore, ForgetAUCAfter float64
}

// Unlearn approximately removes the influence of forget from model m (the
// §5 "unlearning learned knowledge" task, in the gradient-ascent-plus-repair
// style of the cited unlearning literature): ascend the loss on the forget
// set, then repair on the retain set. nonMembers is held-out data used only
// to measure membership exposure before and after. m is modified in place.
func Unlearn(m *nn.MLP, forget, retain, nonMembers *data.Dataset, cfg UnlearnConfig) (*UnlearnResult, error) {
	if forget.Len() == 0 || retain.Len() == 0 {
		return nil, fmt.Errorf("privacy: unlearning needs non-empty forget and retain sets")
	}
	if forget.Dim() != m.InputDim() || retain.Dim() != m.InputDim() {
		return nil, fmt.Errorf("privacy: dataset dims inconsistent with model input %d", m.InputDim())
	}
	if cfg.AscentEpochs <= 0 {
		cfg.AscentEpochs = 30
	}
	if cfg.RepairEpochs <= 0 {
		cfg.RepairEpochs = 5
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	res := &UnlearnResult{
		ForgetAccBefore: m.Accuracy(forget),
		RetainAccBefore: m.Accuracy(retain),
	}
	if nonMembers != nil && nonMembers.Len() > 0 {
		auc, err := membershipAUCOn(m, forget, nonMembers)
		if err != nil {
			return nil, err
		}
		res.ForgetAUCBefore = auc
	}

	// Gradient ascent on the forget set.
	rng := xrand.New(cfg.Seed)
	g := nn.NewGrads(m)
	for epoch := 0; epoch < cfg.AscentEpochs; epoch++ {
		perm := rng.Perm(forget.Len())
		for start := 0; start < len(perm); start += 8 {
			end := start + 8
			if end > len(perm) {
				end = len(perm)
			}
			g.Zero()
			for _, idx := range perm[start:end] {
				x, y := forget.Example(idx)
				m.Backward(x, y, g)
			}
			inv := 1.0 / float64(end-start)
			for l := range g.W {
				g.W[l].Scale(inv)
				g.B[l].Scale(inv)
				m.W[l].AddScaled(+cfg.LR, g.W[l]) // ascent
				m.B[l].AddScaled(+cfg.LR, g.B[l])
			}
		}
	}
	// Repair on the retain set.
	repair := nn.TrainConfig{Epochs: cfg.RepairEpochs, BatchSize: 8, LR: cfg.LR, Seed: cfg.Seed + 1}
	if _, err := nn.Train(m, retain, repair); err != nil {
		return nil, err
	}

	res.ForgetAccAfter = m.Accuracy(forget)
	res.RetainAccAfter = m.Accuracy(retain)
	if nonMembers != nil && nonMembers.Len() > 0 {
		auc, err := membershipAUCOn(m, forget, nonMembers)
		if err != nil {
			return nil, err
		}
		res.ForgetAUCAfter = auc
	}
	return res, nil
}

// membershipAUCOn runs the loss-threshold attack treating members as the
// positive class.
func membershipAUCOn(m *nn.MLP, members, nonMembers *data.Dataset) (float64, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return 0, fmt.Errorf("privacy: empty membership sample")
	}
	var scores []float64
	var labels []bool
	for i := 0; i < members.Len(); i++ {
		x, y := members.Example(i)
		scores = append(scores, -m.ExampleLoss(x, y))
		labels = append(labels, true)
	}
	for i := 0; i < nonMembers.Len(); i++ {
		x, y := nonMembers.Example(i)
		scores = append(scores, -m.ExampleLoss(x, y))
		labels = append(labels, false)
	}
	return attribution.AUC(scores, labels), nil
}

// Quickstart: build a small model lake, ingest a few trained models with
// cards, and exercise search, querying, and citation.
package main

import (
	"fmt"
	"log"

	"modellake"
)

func main() {
	lk, err := modellake.Open(modellake.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer lk.Close()

	// Train three small classifiers on different synthetic domains.
	for i, domainName := range []string{"legal", "medical", "finance"} {
		dom := modellake.NewDomain(domainName, 8, 3, uint64(100+i))
		ds := dom.Sample(domainName+"/v1", 200, 0.4, modellake.NewRNG(uint64(i)))
		lk.RegisterDataset(ds)

		net := modellake.NewMLP([]int{8, 16, 3}, uint64(i))
		if _, err := modellake.Train(net, ds, modellake.DefaultTrainConfig()); err != nil {
			log.Fatal(err)
		}
		m := &modellake.Model{
			Name: domainName + "-classifier",
			Net:  net,
			Hist: &modellake.History{
				DatasetID:      ds.ID,
				DatasetDomain:  domainName,
				Transformation: "pretrain",
			},
		}
		c := &modellake.Card{
			Name:         m.Name,
			Domain:       domainName,
			Task:         "classification",
			TrainingData: ds.ID,
			Description:  fmt.Sprintf("A %s document classifier.", domainName),
			License:      "apache-2.0",
		}
		rec, err := lk.Ingest(m, c, modellake.RegisterOptions{Name: m.Name})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %s as %s\n", m.Name, rec.ID)
	}

	// Keyword search.
	fmt.Println("\nkeyword search 'legal':")
	for _, h := range lk.SearchKeyword("legal", 3) {
		fmt.Printf("  %-12s score=%.3f\n", h.ID, h.Score)
	}

	// Declarative query.
	res, err := lk.Query("FIND MODELS WHERE TRAINED ON DATASET 'medical/v1'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFIND MODELS WHERE TRAINED ON DATASET 'medical/v1':")
	for _, h := range res.Hits {
		rec, _ := lk.Record(h.ID)
		fmt.Printf("  %s (%s)\n", h.ID, rec.Name)
	}

	// Citation.
	id, err := lk.Resolve("legal-classifier", "1")
	if err != nil {
		log.Fatal(err)
	}
	cite, err := lk.Cite(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncite: %s\n", cite)

	// Card rendering.
	c, err := lk.Card(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", c.Markdown())
}

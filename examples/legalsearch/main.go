// Legalsearch reproduces the paper's Example 1.1: a user wants a model for
// legal documents, but the lake's documentation is incomplete — many cards
// have lost their domain and description fields, so keyword search misses
// relevant models. Content-based search over the models' observable
// behaviour keeps finding them, and hybrid search combines both.
package main

import (
	"fmt"
	"log"
	"strings"

	"modellake"
)

func main() {
	lk, err := modellake.Open(modellake.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer lk.Close()

	// Generate a benchmark lake where 90% of card fields are missing —
	// the documentation reality Liang et al. measured.
	spec := modellake.DefaultLakeSpec(42)
	spec.NumBases = 4
	spec.ChildrenPerBase = 5
	spec.CardDropProb = 0.9
	spec.AnonymousNames = true
	pop, err := modellake.GenerateLake(spec)
	if err != nil {
		log.Fatal(err)
	}

	legalIDs := map[string]bool{}
	var queryModelID string
	for _, m := range pop.Members {
		rec, err := lk.Ingest(m.Model, m.Card, modellake.RegisterOptions{Name: m.Truth.Name})
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasPrefix(m.Truth.Domain, "legal") {
			legalIDs[rec.ID] = true
			if m.Truth.Depth == 0 {
				queryModelID = rec.ID
			}
		}
	}
	fmt.Printf("lake holds %d models; %d are truly legal-domain\n\n", lk.Count(), len(legalIDs))

	show := func(title string, hits []modellake.Hit) {
		relevant := 0
		fmt.Printf("%s\n", title)
		for _, h := range hits {
			mark := " "
			if legalIDs[h.ID] {
				mark = "*"
				relevant++
			}
			rec, _ := lk.Record(h.ID)
			fmt.Printf("  %s %-10s %-22s score=%.3f\n", mark, h.ID, rec.Name, h.Score)
		}
		fmt.Printf("  → %d/%d truly legal (* = relevant)\n\n", relevant, len(hits))
	}

	// Status quo: keyword search over (incomplete) cards.
	show("keyword search: 'legal statute court summarization'",
		lk.SearchKeyword("legal statute court summarization", 5))

	// The paper's vision: content-based model-as-query search.
	hits, err := lk.SearchByModel(queryModelID, "behavior", 5)
	if err != nil {
		log.Fatal(err)
	}
	show(fmt.Sprintf("content-based search: models behaving like %s", queryModelID), hits)

	// Hybrid: reciprocal-rank fusion of both.
	hybrid, err := lk.SearchHybrid("legal statute court", queryModelID, 5)
	if err != nil {
		log.Fatal(err)
	}
	show("hybrid search (RRF of keyword + behaviour)", hybrid)

	// Task search: "I have a handful of labeled legal examples."
	var legalDS *modellake.Dataset
	for _, m := range pop.Members {
		if m.Truth.Depth == 0 && strings.HasPrefix(m.Truth.Domain, "legal") {
			legalDS = pop.Datasets[m.Truth.DatasetID]
		}
	}
	examples := make([]modellake.TaskExample, 0, 16)
	for i := 0; i < 16; i++ {
		x, y := legalDS.Example(i)
		examples = append(examples, modellake.TaskExample{X: x.Clone(), Y: y})
	}
	taskHits, err := lk.SearchTask(examples, 5)
	if err != nil {
		log.Fatal(err)
	}
	show("task search: 16 labeled legal examples", taskHits)
}

// Lineage demonstrates model-version recovery: a family tree of models is
// generated (fine-tunes, LoRA merges, edits, stitches), its documentation is
// thrown away, and the lake reconstructs the directed Model Graph from the
// weights alone — then labels each recovered edge with the transformation
// that produced it and emits version-anchored citations.
package main

import (
	"fmt"
	"log"

	"modellake"
)

func main() {
	lk, err := modellake.Open(modellake.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer lk.Close()

	spec := modellake.DefaultLakeSpec(11)
	spec.NumBases = 3
	spec.ChildrenPerBase = 6
	spec.CardDropProb = 1.0 // no documentation at all: lineage must come from θ
	pop, err := modellake.GenerateLake(spec)
	if err != nil {
		log.Fatal(err)
	}

	idOf := map[int]string{}
	for i, m := range pop.Members {
		rec, err := lk.Ingest(m.Model, m.Card, modellake.RegisterOptions{Name: m.Truth.Name})
		if err != nil {
			log.Fatal(err)
		}
		idOf[i] = rec.ID
	}

	// True graph (hidden from the lake).
	fmt.Println("true version edges (hidden from the lake):")
	for _, e := range pop.Edges {
		fmt.Printf("  %-22s -> %-22s (%s)\n",
			pop.Members[e.Parent].Truth.Name, pop.Members[e.Child].Truth.Name, e.Transform)
	}

	// Recovered graph.
	g, err := lk.VersionGraph()
	if err != nil {
		log.Fatal(err)
	}
	nameOf := map[string]string{}
	for i := range pop.Members {
		nameOf[idOf[i]] = pop.Members[i].Truth.Name
	}
	truth := map[[2]string]string{}
	for _, e := range pop.Edges {
		truth[[2]string{idOf[e.Parent], idOf[e.Child]}] = e.Transform
	}
	fmt.Println("\nrecovered from weights alone:")
	correct, labelCorrect := 0, 0
	for _, e := range g.Edges {
		mark := " "
		if wantTransform, ok := truth[[2]string{e.Parent, e.Child}]; ok {
			mark = "*"
			correct++
			if e.Transform == wantTransform {
				labelCorrect++
			}
		}
		fmt.Printf("  %s %-22s -> %-22s (%s, dist %.3g)\n",
			mark, nameOf[e.Parent], nameOf[e.Child], e.Transform, e.Distance)
	}
	fmt.Printf("\n%d/%d recovered edges are true (* = matches ground truth); %d/%d labels correct\n",
		correct, len(g.Edges), labelCorrect, correct)

	// Citations anchor to this graph snapshot.
	cite, err := lk.Cite(idOf[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncitation for %s:\n  %s\n", nameOf[idOf[0]], cite)
}

// Audit demonstrates the paper's §6 auditing application: a base model in
// the lake is discovered to be poisoned; risk propagates to every downstream
// version through the *recovered* version graph (the uploader documentation
// is incomplete, so declared lineage alone would miss descendants), and each
// descendant's audit report carries the finding plus the auto-answered
// questionnaire.
package main

import (
	"fmt"
	"log"

	"modellake"
)

func main() {
	lk, err := modellake.Open(modellake.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer lk.Close()

	spec := modellake.DefaultLakeSpec(23)
	spec.NumBases = 2
	spec.ChildrenPerBase = 5
	spec.CardDropProb = 0.7 // lineage documentation mostly missing
	pop, err := modellake.GenerateLake(spec)
	if err != nil {
		log.Fatal(err)
	}
	idOf := map[int]string{}
	for i, m := range pop.Members {
		rec, err := lk.Ingest(m.Model, m.Card, modellake.RegisterOptions{Name: m.Truth.Name})
		if err != nil {
			log.Fatal(err)
		}
		idOf[i] = rec.ID
	}

	// The first base model is found to be poisoned.
	poisonedIdx := 0
	for i, m := range pop.Members {
		if m.Truth.Depth == 0 {
			poisonedIdx = i
			break
		}
	}
	flagged := map[string]string{
		idOf[poisonedIdx]: "training data poisoning disclosed by upstream maintainer",
	}
	fmt.Printf("flagged: %s (%s)\n\n", idOf[poisonedIdx], pop.Members[poisonedIdx].Truth.Name)

	// Audit every model; descendants of the poisoned base must inherit the
	// risk even though most cards lost their base_model field.
	trueDescendants := map[string]bool{}
	for i, m := range pop.Members {
		for _, anc := range ancestorClosure(pop, i) {
			if anc == poisonedIdx {
				trueDescendants[idOf[i]] = true
			}
		}
		_ = m
	}
	fmt.Printf("%d true descendants should inherit the risk\n\n", len(trueDescendants))

	caught, missed := 0, 0
	for i := range pop.Members {
		rep, err := lk.Audit(idOf[i], flagged)
		if err != nil {
			log.Fatal(err)
		}
		inherits := rep.HasCritical()
		if trueDescendants[idOf[i]] || idOf[i] == idOf[poisonedIdx] {
			if inherits {
				caught++
			} else {
				missed++
			}
		}
		if inherits {
			fmt.Printf("  %s (%s): CRITICAL\n", idOf[i], pop.Members[i].Truth.Name)
		}
	}
	fmt.Printf("\nrisk recall via recovered graph: %d caught, %d missed\n\n", caught, missed)

	// Print one full report.
	var victim string
	for id := range trueDescendants {
		victim = id
		break
	}
	if victim == "" {
		victim = idOf[poisonedIdx]
	}
	rep, err := lk.Audit(victim, flagged)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Markdown())
}

// ancestorClosure returns the true transitive ancestors of member i.
func ancestorClosure(pop *modellake.Population, i int) []int {
	var out []int
	seen := map[int]bool{i: true}
	queue := []int{i}
	for qi := 0; qi < len(queue); qi++ {
		for _, p := range pop.Members[queue[qi]].Truth.Parents {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				queue = append(queue, p)
			}
		}
	}
	return out
}

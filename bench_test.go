package modellake

// One testing.B benchmark per reproduction experiment (DESIGN.md §3). Each
// iteration regenerates the experiment's workload and recomputes its table,
// so `go test -bench=. -benchmem` both times the harness and re-validates
// the result shapes. cmd/lakebench prints the same tables with full detail.

import (
	"fmt"
	"strconv"
	"testing"

	"modellake/internal/experiments"
	"modellake/internal/version"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var run func(uint64) (*experiments.Table, error)
	for _, ex := range experiments.All() {
		if ex.ID == id {
			run = ex.Run
		}
	}
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		t, err := run(42)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1SearchVsCompleteness(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2VersionGraph(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkE3Attribution(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4Indexer(b *testing.B)              { benchExperiment(b, "E4") }
func BenchmarkE5Membership(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6DocGen(b *testing.B)               { benchExperiment(b, "E6") }
func BenchmarkE7Citation(b *testing.B)             { benchExperiment(b, "E7") }
func BenchmarkE8WeightSpace(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9Queries(b *testing.B)              { benchExperiment(b, "E9") }
func BenchmarkE10Audit(b *testing.B)               { benchExperiment(b, "E10") }
func BenchmarkF1Viewpoints(b *testing.B)           { benchExperiment(b, "F1") }

// BenchmarkLakeIngest measures end-to-end ingest throughput (register +
// card index + two content embeddings + provenance journal).
func BenchmarkLakeIngest(b *testing.B) {
	pop, err := GenerateLake(DefaultLakeSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		lk, err := Open(Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j, m := range pop.Members {
			clone := *m.Model
			clone.ID = ""
			if _, err := lk.Ingest(&clone, m.Card, RegisterOptions{
				Name: m.Truth.Name, Version: strconv.Itoa(i) + "-" + strconv.Itoa(j),
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		lk.Close()
		b.StartTimer()
	}
}

// BenchmarkLakeIngestParallel is the batch counterpart of
// BenchmarkLakeIngest: the same population through IngestAll with a
// GOMAXPROCS worker pool. Comparing the two ns/op numbers gives the ingest
// pipeline's speedup on this machine.
func BenchmarkLakeIngestParallel(b *testing.B) {
	pop, err := GenerateLake(DefaultLakeSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		items := make([]IngestItem, len(pop.Members))
		for j, m := range pop.Members {
			clone := *m.Model
			clone.ID = ""
			items[j] = IngestItem{Model: &clone, Card: m.Card, Opts: RegisterOptions{
				Name: m.Truth.Name, Version: strconv.Itoa(i) + "-" + strconv.Itoa(j),
			}}
		}
		lk, err := Open(Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		_, errs := lk.IngestAll(items, 0)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		lk.Close()
		b.StartTimer()
	}
}

func BenchmarkE12Ingest(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Query runs the read-path query benchmark at reduced scale so
// `go test -bench` stays fast; cmd/lakebench runs the full sweep.
func BenchmarkE13Query(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.RunE13Query(42, []int{1000}, 200)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("E13 produced no rows")
		}
	}
}

// BenchmarkE16Scale runs the atlas-scale benchmark at reduced scale so
// `go test -bench` stays fast; cmd/lakebench runs the full 10k/100k sweep.
func BenchmarkE16Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.RunE16Scale(42, []int{1000}, 50, 300)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("E16 produced no rows")
		}
	}
}

// BenchmarkLakeQuery measures MLQL query latency on a ~50-model lake.
func BenchmarkLakeQuery(b *testing.B) {
	spec := DefaultLakeSpec(2)
	spec.NumBases = 5
	spec.ChildrenPerBase = 9
	pop, err := GenerateLake(spec)
	if err != nil {
		b.Fatal(err)
	}
	lk, err := Open(Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer lk.Close()
	for _, ds := range pop.Datasets {
		lk.RegisterDataset(ds)
	}
	for _, m := range pop.Members {
		if _, err := lk.Ingest(m.Model, m.Card, RegisterOptions{Name: m.Truth.Name}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lk.Query("FIND MODELS WHERE DOMAIN = 'legal' LIMIT 10"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVersionGraphReconstruction measures whole-lake (50-model) graph
// recovery, bypassing the lake's graph cache so every iteration pays the
// full reconstruction.
func BenchmarkVersionGraphReconstruction(b *testing.B) {
	spec := DefaultLakeSpec(3)
	spec.NumBases = 5
	spec.ChildrenPerBase = 9
	pop, err := GenerateLake(spec)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]version.Node, len(pop.Members))
	for i, m := range pop.Members {
		nodes[i] = version.Node{ID: fmt.Sprintf("n%d", i), Net: m.Model.Net}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := version.Reconstruct(nodes, version.Config{ClassifyEdges: true, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11Lifelong(b *testing.B) { benchExperiment(b, "E11") }

// Command modellake is the command-line interface to a durable model lake.
//
// Usage:
//
//	modellake <command> [flags]
//
// Commands:
//
//	gen      generate a synthetic benchmark lake into a directory
//	ls       list lake models
//	card     print a model's card (markdown)
//	search   keyword search over model cards
//	related  content-based related-model search
//	task     rank models on a labeled task sample from a domain
//	query    run an MLQL declarative query
//	graph    print the recovered version graph
//	docgen   draft a model card from lake analyses
//	audit    audit a model (optionally with flagged upstream models)
//	cite     print a version-anchored citation
//	why      print why-provenance for a model
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"modellake"
	"modellake/internal/advisor"
	"modellake/internal/cluster"
	"modellake/internal/lakegen"
	"modellake/internal/search"
	"modellake/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "ls":
		err = cmdLs(args)
	case "card":
		err = cmdCard(args)
	case "search":
		err = cmdSearch(args)
	case "related":
		err = cmdRelated(args)
	case "task":
		err = cmdTask(args)
	case "advise":
		err = cmdAdvise(args)
	case "query":
		err = cmdQuery(args)
	case "graph":
		err = cmdGraph(args)
	case "docgen":
		err = cmdDocgen(args)
	case "audit":
		err = cmdAudit(args)
	case "cite":
		err = cmdCite(args)
	case "why":
		err = cmdWhy(args)
	case "serve":
		err = cmdServe(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "modellake: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "modellake %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: modellake <command> [flags]

commands:
  gen      -dir DIR [-bases N] [-children N] [-drop P] [-lies P] [-anon] [-seed N] [-export DIR]
  ls       -dir DIR
  card     -dir DIR -id MODEL
  search   -dir DIR -q 'TEXT' [-k N]
  related  -dir DIR -id MODEL [-space behavior|weights] [-k N]
  task     -dir DIR -domain NAME [-n N] [-k N]
  advise   -dir DIR -domain NAME [-n N] [-k N]
  query    -dir DIR -q 'FIND MODELS ...' [-explain]
  graph    -dir DIR
  docgen   -dir DIR -id MODEL
  audit    -dir DIR -id MODEL [-flag MODEL=REASON]...
  cite     -dir DIR -id MODEL
  why      -dir DIR -id MODEL
  serve    -dir DIR [-addr :8080] [-shards N] [-replicas N]
           [-request-timeout 30s] [-max-inflight 256]
           [-read-timeout 30s] [-write-timeout 90s] [-idle-timeout 2m]
           [-max-body BYTES] [-drain-timeout 15s] [-pprof]`)
}

func openLake(dir string) (*modellake.Lake, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	return modellake.Open(modellake.Config{Dir: dir, Seed: 1})
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	bases := fs.Int("bases", 4, "base model families")
	children := fs.Int("children", 5, "derived models per family")
	drop := fs.Float64("drop", 0.3, "card field dropout probability")
	lies := fs.Float64("lies", 0, "fraction of cards with injected misinformation")
	anon := fs.Bool("anon", false, "give models opaque names")
	seed := fs.Uint64("seed", 42, "generation seed")
	export := fs.String("export", "", "also export the benchmark lake (weights+cards+ground truth) to this directory")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()

	spec := modellake.DefaultLakeSpec(*seed)
	spec.NumBases = *bases
	spec.ChildrenPerBase = *children
	spec.CardDropProb = *drop
	spec.LieFrac = *lies
	spec.AnonymousNames = *anon
	pop, err := modellake.GenerateLake(spec)
	if err != nil {
		return err
	}
	for _, ds := range pop.Datasets {
		lk.RegisterDataset(ds)
	}
	nameToID := map[string]string{}
	for _, m := range pop.Members {
		// Carry the declared (card-level) history into the record so
		// provenance has something to journal; lies and gaps carry over.
		if m.Card.TrainingData != "" || m.Card.BaseModel != "" {
			m.Model.Hist = &modellake.History{
				DatasetID:      m.Card.TrainingData,
				DatasetDomain:  m.Card.Domain,
				Transformation: m.Card.Transform,
			}
			if base, ok := nameToID[m.Card.BaseModel]; ok {
				m.Model.Hist.BaseModelIDs = []string{base}
			}
		}
		rec, err := lk.Ingest(m.Model, m.Card, modellake.RegisterOptions{Name: m.Truth.Name})
		if err != nil {
			return err
		}
		nameToID[m.Truth.Name] = rec.ID
		fmt.Printf("%s  %-24s depth=%d transform=%s\n",
			rec.ID, m.Truth.Name, m.Truth.Depth, m.Truth.Transform)
	}
	fmt.Printf("generated %d models into %s\n", lk.Count(), *dir)
	if *export != "" {
		if err := lakegen.Export(pop, *export); err != nil {
			return err
		}
		fmt.Printf("exported benchmark artifact (weights, cards, ground truth) to %s\n", *export)
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	recs, err := lk.Records()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		completeness := "-"
		if c, err := lk.Card(rec.ID); err == nil {
			completeness = fmt.Sprintf("%.0f%%", c.Completeness()*100)
		}
		fmt.Printf("%s  %-24s v%-3s %-18s params=%-6d card=%s\n",
			rec.ID, rec.Name, rec.Version, rec.Arch, rec.NumParams, completeness)
	}
	return nil
}

func cmdCard(args []string) error {
	fs := flag.NewFlagSet("card", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	id := fs.String("id", "", "model id")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	c, err := lk.Card(*id)
	if err != nil {
		return err
	}
	fmt.Print(c.Markdown())
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	q := fs.String("q", "", "query text")
	k := fs.Int("k", 10, "results")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	for _, h := range lk.SearchKeyword(*q, *k) {
		printHit(lk, h)
	}
	return nil
}

func cmdRelated(args []string) error {
	fs := flag.NewFlagSet("related", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	id := fs.String("id", "", "query model id")
	space := fs.String("space", "behavior", "embedding space: behavior or weights")
	k := fs.Int("k", 10, "results")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	hits, err := lk.SearchByModel(*id, *space, *k)
	if err != nil {
		return err
	}
	for _, h := range hits {
		printHit(lk, h)
	}
	return nil
}

func cmdTask(args []string) error {
	fs := flag.NewFlagSet("task", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	domain := fs.String("domain", "", "domain to sample task examples from")
	n := fs.Int("n", 16, "task examples")
	k := fs.Int("k", 10, "results")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	dom := modellake.NewDomain(*domain, 8, 3, domainSeedCLI(*domain))
	ds := dom.Sample(*domain+"/task", *n, 0.4, modellake.NewRNG(99))
	hits, err := lk.SearchTask(search.DatasetAsTask(ds, *n), *k)
	if err != nil {
		return err
	}
	for _, h := range hits {
		printHit(lk, h)
	}
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	domain := fs.String("domain", "", "domain to sample task examples from")
	n := fs.Int("n", 16, "task examples")
	k := fs.Int("k", 5, "recommendations")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	dom := modellake.NewDomain(*domain, 8, 3, domainSeedCLI(*domain))
	ds := dom.Sample(*domain+"/task", *n, 0.4, modellake.NewRNG(99))
	advice, err := advisor.Advise(lk, search.DatasetAsTask(ds, *n), *k)
	if err != nil {
		return err
	}
	fmt.Print(advice.Markdown())
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	q := fs.String("q", "", "MLQL query")
	explain := fs.Bool("explain", false, "print the evaluation plan instead of running")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	if *explain {
		plan, err := lk.Explain(*q)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	res, err := lk.Query(*q)
	if err != nil {
		return err
	}
	fmt.Printf("-- %s\n", res.Query)
	for _, h := range res.Hits {
		rec, _ := lk.Record(h.ID)
		name := ""
		if rec != nil {
			name = rec.Name
		}
		fmt.Printf("%s  %-24s score=%.4f\n", h.ID, name, h.Score)
	}
	return nil
}

func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	g, err := lk.VersionGraph()
	if err != nil {
		return err
	}
	for _, e := range g.Edges {
		fmt.Printf("%s -> %s  (%s)\n", e.Parent, e.Child, e.Transform)
	}
	fmt.Printf("%d nodes, %d edges\n", len(g.Nodes), len(g.Edges))
	return nil
}

func cmdDocgen(args []string) error {
	fs := flag.NewFlagSet("docgen", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	id := fs.String("id", "", "model id")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	draft, err := lk.GenerateCard(*id)
	if err != nil {
		return err
	}
	fmt.Print(draft.Card.Markdown())
	if len(draft.Evidence) > 0 {
		fmt.Println("## Evidence")
		fmt.Println()
		for field, ev := range draft.Evidence {
			fmt.Printf("- %s: %s\n", field, ev)
		}
	}
	for _, f := range draft.Flags {
		fmt.Printf("\nWARNING: %s\n", f)
	}
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	id := fs.String("id", "", "model id")
	var flags flagList
	fs.Var(&flags, "flag", "flagged model as MODEL=REASON (repeatable)")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	flagged := map[string]string{}
	for _, f := range flags {
		parts := strings.SplitN(f, "=", 2)
		reason := "flagged"
		if len(parts) == 2 {
			reason = parts[1]
		}
		flagged[parts[0]] = reason
	}
	rep, err := lk.Audit(*id, flagged)
	if err != nil {
		return err
	}
	fmt.Print(rep.Markdown())
	return nil
}

func cmdCite(args []string) error {
	fs := flag.NewFlagSet("cite", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	id := fs.String("id", "", "model id")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	c, err := lk.Cite(*id)
	if err != nil {
		return err
	}
	fmt.Println(c)
	return nil
}

func cmdWhy(args []string) error {
	fs := flag.NewFlagSet("why", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	id := fs.String("id", "", "model id")
	fs.Parse(args)
	lk, err := openLake(*dir)
	if err != nil {
		return err
	}
	defer lk.Close()
	ex, err := lk.Provenance().Why("model:" + *id)
	if err != nil {
		return err
	}
	fmt.Printf("entity:   %s\n", ex.Entity)
	fmt.Printf("activity: %s\n", ex.Activity)
	for _, u := range ex.UsedInputs {
		fmt.Printf("used:     %s\n", u)
	}
	for _, a := range ex.Agents {
		fmt.Printf("agent:    %s\n", a)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "", "lake directory")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 0, "serve a sharded cluster with this many shards (0 = single-node lake)")
	replicas := fs.Int("replicas", 1, "read replicas per shard in cluster mode (-shards > 0)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max time to read a request, including body")
	writeTimeout := fs.Duration("write-timeout", 90*time.Second, "max time to write a response")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle limit")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request handler deadline (0 disables)")
	maxInflight := fs.Int("max-inflight", 256, "concurrent request cap; excess requests get 429 (0 disables)")
	maxBody := fs.Int64("max-body", 64<<20, "ingest request body cap in bytes")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain limit")
	pprof := fs.Bool("pprof", false, "expose /debug/pprof/* profiling endpoints")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}

	// Bind the listener and routes before opening the lake, so orchestrators
	// see the process alive (and /readyz honestly "opening") while a large
	// log replays, instead of connection-refused followed by a ready flip the
	// instant the port binds.
	srv := server.NewOpening(server.Config{
		RequestTimeout: *reqTimeout,
		MaxInflight:    *maxInflight,
		MaxBodyBytes:   *maxBody,
		AccessLog:      os.Stderr,
		EnablePprof:    *pprof,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Serve until the listener fails, the open fails, or a shutdown signal
	// arrives.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 2)
	go func() { errc <- hs.ListenAndServe() }()

	var lakeClose atomic.Pointer[func() error]
	defer func() {
		if f := lakeClose.Load(); f != nil {
			(*f)()
		}
	}()
	go func() {
		if *shards > 0 {
			c, err := cluster.Open(cluster.Config{
				Dir:      *dir,
				Shards:   *shards,
				Replicas: *replicas,
				Lake:     modellake.Config{Sync: true, Seed: 1},
			})
			if err != nil {
				errc <- fmt.Errorf("open cluster: %w", err)
				return
			}
			closeFn := c.Close
			lakeClose.Store(&closeFn)
			srv.Attach(c)
			fmt.Fprintf(os.Stderr, "modellake: serving %s (%d models, %d shards, %d replicas/shard) on %s\n",
				*dir, c.Count(), *shards, *replicas, *addr)
			return
		}
		lk, err := openLake(*dir)
		if err != nil {
			errc <- fmt.Errorf("open lake: %w", err)
			return
		}
		closeFn := lk.Close
		lakeClose.Store(&closeFn)
		srv.Attach(lk)
		fmt.Fprintf(os.Stderr, "modellake: serving %s (%d models) on %s\n", *dir, lk.Count(), *addr)
	}()
	fmt.Fprintf(os.Stderr, "modellake: listening on %s, opening %s\n", *addr, *dir)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second SIGINT kills hard

	// Graceful shutdown: flip /readyz to draining so load balancers stop
	// sending traffic, then drain in-flight connections.
	fmt.Fprintln(os.Stderr, "modellake: shutdown signal received, draining connections")
	srv.Drain()
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		hs.Close()
		return fmt.Errorf("drain incomplete after %s: %w", *drainTimeout, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "modellake: drained, exiting")
	return nil
}

func printHit(lk *modellake.Lake, h modellake.Hit) {
	rec, err := lk.Record(h.ID)
	name := "?"
	if err == nil {
		name = rec.Name
	}
	fmt.Printf("%s  %-24s score=%.4f\n", h.ID, name, h.Score)
}

// domainSeedCLI matches lakegen's name-derived domain seeds so CLI task
// sampling targets the same tasks generated lakes train on.
func domainSeedCLI(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

type flagList []string

func (f *flagList) String() string     { return strings.Join(*f, ",") }
func (f *flagList) Set(s string) error { *f = append(*f, s); return nil }

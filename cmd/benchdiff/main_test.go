package main

import (
	"strings"
	"testing"
)

const oldOut = `
goos: linux
BenchmarkFlatSearch10k-8        380     3111944 ns/op    259536 B/op      26 allocs/op
BenchmarkHNSWSearch10k-8       6044      197847 ns/op     92120 B/op      51 allocs/op
BenchmarkGone-8                 100        5000 ns/op
PASS
`

const newOut = `
BenchmarkFlatSearch10k-16      3718      322459 ns/op       243 B/op       1 allocs/op
BenchmarkFlatSearch10k-16      3700      322500 ns/op       243 B/op       1 allocs/op
BenchmarkHNSWSearch10k-16     21684       55244 ns/op      1264 B/op       2 allocs/op
BenchmarkAdded-16               100        9999 ns/op
`

func TestDiff(t *testing.T) {
	oldS, _, err := parseBench(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	newS, order, err := parseBench(strings.NewReader(newOut))
	if err != nil {
		t.Fatal(err)
	}
	rows := diff(oldS, newS, order)
	// Two common benchmarks × three units each; Gone/Added are skipped.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].name != "FlatSearch10k" || rows[0].unit != "ns/op" {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	// Repeated new-side runs are averaged: (322459+322500)/2.
	if want := (322459.0 + 322500.0) / 2; rows[0].newVal != want {
		t.Fatalf("newVal = %v, want %v", rows[0].newVal, want)
	}
	if rows[0].delta >= -85 || rows[0].delta <= -95 {
		t.Fatalf("delta = %v, want ~-89.6%%", rows[0].delta)
	}
	var sb strings.Builder
	render(&sb, rows)
	out := sb.String()
	for _, want := range []string{"FlatSearch10k", "HNSWSearch10k", "allocs/op", "-89.6%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Gone") || strings.Contains(out, "Added") {
		t.Fatalf("table contains non-common benchmark:\n%s", out)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	s, order, err := parseBench(strings.NewReader("garbage\nBenchmarkX-4 12 notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
	if _, ok := s["X"].mean("ns/op"); ok {
		t.Fatal("malformed value should not produce a mean")
	}
}

const oldJSON = `{
  "points": [
    {"kind": "quant", "n_vectors": 100000, "qps": 900.0, "tier_bytes": 5200000, "identical_topk": true},
    {"kind": "pq", "n_vectors": 100000, "qps": 800.0, "tier_bytes": 865600, "identical_topk": true}
  ],
  "stream": {"models": 100000, "peak_heap_bytes": 900000000, "search_qps": 120.5, "under_2gb": true}
}`

const newJSON = `{
  "points": [
    {"kind": "quant", "n_vectors": 100000, "qps": 910.0, "tier_bytes": 5200000, "identical_topk": true},
    {"kind": "pq", "n_vectors": 100000, "qps": 880.0, "tier_bytes": 865600, "identical_topk": true},
    {"kind": "pq", "n_vectors": 1000000, "qps": 95.0, "tier_bytes": 8065600, "identical_topk": true}
  ],
  "stream": {"models": 100000, "peak_heap_bytes": 850000000, "search_qps": 131.0, "under_2gb": true}
}`

// TestDiffScaleJSON pins the sniffed JSON mode: lakebench summaries flatten
// into (name, unit) rows — including arms benchdiff has never heard of,
// like the PQ points — and only rows present on both sides are diffed.
func TestDiffScaleJSON(t *testing.T) {
	oldS, _, err := parseAny([]byte(oldJSON))
	if err != nil {
		t.Fatal(err)
	}
	newS, order, err := parseAny([]byte(newJSON))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := newS["points/pq/1000000"]; !ok {
		t.Fatalf("1M pq point not flattened; names = %v", order)
	}
	rows := diff(oldS, newS, order)
	var sb strings.Builder
	render(&sb, rows)
	out := sb.String()
	for _, want := range []string{"points/pq/100000", "points/quant/100000", "qps", "tier_bytes", "stream/100000", "peak_heap_bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// The 1M point exists only on the new side, so it must not be diffed.
	if strings.Contains(out, "points/pq/1000000") {
		t.Fatalf("table contains non-common row:\n%s", out)
	}
	// Booleans flatten to 0/1 and survive the round trip.
	if v, ok := newS["points/pq/100000"].mean("identical_topk"); !ok || v != 1 {
		t.Fatalf("identical_topk = %v, %v", v, ok)
	}
}

// TestParseAnySniffsText keeps the classic path intact behind the sniffer.
func TestParseAnySniffsText(t *testing.T) {
	s, order, err := parseAny([]byte(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if _, ok := s["FlatSearch10k"].mean("ns/op"); !ok {
		t.Fatal("text benchmarks not parsed through parseAny")
	}
}

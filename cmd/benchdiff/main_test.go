package main

import (
	"strings"
	"testing"
)

const oldOut = `
goos: linux
BenchmarkFlatSearch10k-8        380     3111944 ns/op    259536 B/op      26 allocs/op
BenchmarkHNSWSearch10k-8       6044      197847 ns/op     92120 B/op      51 allocs/op
BenchmarkGone-8                 100        5000 ns/op
PASS
`

const newOut = `
BenchmarkFlatSearch10k-16      3718      322459 ns/op       243 B/op       1 allocs/op
BenchmarkFlatSearch10k-16      3700      322500 ns/op       243 B/op       1 allocs/op
BenchmarkHNSWSearch10k-16     21684       55244 ns/op      1264 B/op       2 allocs/op
BenchmarkAdded-16               100        9999 ns/op
`

func TestDiff(t *testing.T) {
	oldS, _, err := parseBench(strings.NewReader(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	newS, order, err := parseBench(strings.NewReader(newOut))
	if err != nil {
		t.Fatal(err)
	}
	rows := diff(oldS, newS, order)
	// Two common benchmarks × three units each; Gone/Added are skipped.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].name != "FlatSearch10k" || rows[0].unit != "ns/op" {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	// Repeated new-side runs are averaged: (322459+322500)/2.
	if want := (322459.0 + 322500.0) / 2; rows[0].newVal != want {
		t.Fatalf("newVal = %v, want %v", rows[0].newVal, want)
	}
	if rows[0].delta >= -85 || rows[0].delta <= -95 {
		t.Fatalf("delta = %v, want ~-89.6%%", rows[0].delta)
	}
	var sb strings.Builder
	render(&sb, rows)
	out := sb.String()
	for _, want := range []string{"FlatSearch10k", "HNSWSearch10k", "allocs/op", "-89.6%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Gone") || strings.Contains(out, "Added") {
		t.Fatalf("table contains non-common benchmark:\n%s", out)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	s, order, err := parseBench(strings.NewReader("garbage\nBenchmarkX-4 12 notanumber ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
	if _, ok := s["X"].mean("ns/op"); ok {
		t.Fatal("malformed value should not produce a mean")
	}
}

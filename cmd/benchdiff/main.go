// Command benchdiff compares two benchmark outputs and prints a
// benchstat-style old-vs-new table, one row per (benchmark, unit) pair
// present in both files. CI runs it against the merge-base to surface
// read-path regressions in the job summary; it has no dependencies beyond
// the standard library so it runs anywhere the toolchain does.
//
// Two input formats are sniffed per file: classic `go test -bench` text,
// and the machine-readable JSON summaries lakebench writes (a file whose
// first non-space byte is '{', e.g. BENCH_scale.json). JSON files flatten
// generically — objects contribute a name segment from their "kind" plus
// their count-like field (n_vectors, models, ...), and every numeric or
// boolean leaf becomes a unit — so new arms and fields (the PQ rows, the 1M
// stream bar) show up in the diff without benchdiff needing to know them.
//
// Usage: benchdiff OLD NEW
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkFlatSearch10k-8   380   3111944 ns/op   259536 B/op   26 allocs/op
//
// capturing the name (GOMAXPROCS suffix stripped separately) and the rest.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the trailing "-N" so runs from machines with
// different core counts still line up.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// sample is one benchmark's mean value per unit, averaged across repeated
// runs of the same benchmark in one file.
type sample struct {
	sum   map[string]float64
	count map[string]int
}

func (s *sample) mean(unit string) (float64, bool) {
	n := s.count[unit]
	if n == 0 {
		return 0, false
	}
	return s.sum[unit] / float64(n), true
}

func parseBench(r io.Reader) (map[string]*sample, []string, error) {
	out := map[string]*sample{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		fields := strings.Fields(m[2])
		s := out[name]
		if s == nil {
			s = &sample{sum: map[string]float64{}, count: map[string]int{}}
			out[name] = s
			order = append(order, name)
		}
		// fields come in (value, unit) pairs: 3111944 ns/op 259536 B/op ...
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			s.sum[fields[i+1]] += v
			s.count[fields[i+1]]++
		}
	}
	return out, order, sc.Err()
}

// jsonLabelCounts are the count-like fields that, together with "kind",
// label a flattened JSON object: the first present becomes part of the row
// name (and is excluded from the units) so the same arm at two scales makes
// two distinct rows.
var jsonLabelCounts = []string{"n_vectors", "n_models", "models", "docs"}

// parseScaleJSON flattens a lakebench JSON summary into the same
// (name, unit) sample space as parseBench. The walk is fully generic: it
// never names concrete fields beyond the labeling ones above, so adding an
// arm or a metric to the JSON shows up here with zero changes.
func parseScaleJSON(data []byte) (map[string]*sample, []string, error) {
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, nil, err
	}
	out := map[string]*sample{}
	var order []string
	add := func(name, unit string, v float64) {
		s := out[name]
		if s == nil {
			s = &sample{sum: map[string]float64{}, count: map[string]int{}}
			out[name] = s
			order = append(order, name)
		}
		s.sum[unit] += v
		s.count[unit]++
	}
	join := func(name, seg string) string {
		if name == "" {
			return seg
		}
		return name + "/" + seg
	}
	var walk func(name string, v any)
	walk = func(name string, v any) {
		switch x := v.(type) {
		case map[string]any:
			labeled := map[string]bool{}
			if kind, ok := x["kind"].(string); ok && kind != "" {
				name = join(name, kind)
				labeled["kind"] = true
			}
			for _, key := range jsonLabelCounts {
				if c, ok := x[key].(float64); ok {
					name = join(name, strconv.FormatFloat(c, 'f', -1, 64))
					labeled[key] = true
					break
				}
			}
			keys := make([]string, 0, len(x))
			for k := range x {
				if !labeled[k] {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				switch val := x[k].(type) {
				case float64:
					add(name, k, val)
				case bool:
					b := 0.0
					if val {
						b = 1
					}
					add(name, k, b)
				case map[string]any, []any:
					walk(join(name, k), val)
				}
			}
		case []any:
			for _, e := range x {
				walk(name, e)
			}
		}
	}
	walk("", root)
	return out, order, nil
}

// parseAny sniffs the format: a payload whose first non-space byte is '{'
// is a lakebench JSON summary, anything else is `go test -bench` text.
func parseAny(data []byte) (map[string]*sample, []string, error) {
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		return parseScaleJSON(trimmed)
	}
	return parseBench(bytes.NewReader(data))
}

// row is one line of the comparison table.
type row struct {
	name, unit     string
	oldVal, newVal float64
	delta          float64 // percent change, negative = improvement for costs
}

func diff(oldS, newS map[string]*sample, order []string) []row {
	// Units in display order; anything else sorts after.
	unitRank := map[string]int{"ns/op": 0, "B/op": 1, "allocs/op": 2}
	var rows []row
	for _, name := range order {
		o, n := oldS[name], newS[name]
		if o == nil || n == nil {
			continue
		}
		units := make([]string, 0, len(o.sum))
		for u := range o.sum {
			units = append(units, u)
		}
		sort.Slice(units, func(i, j int) bool {
			ri, iok := unitRank[units[i]]
			rj, jok := unitRank[units[j]]
			if iok != jok {
				return iok
			}
			if ri != rj {
				return ri < rj
			}
			return units[i] < units[j]
		})
		for _, u := range units {
			ov, _ := o.mean(u)
			nv, ok := n.mean(u)
			if !ok {
				continue
			}
			d := 0.0
			if ov != 0 {
				d = (nv - ov) / ov * 100
			}
			rows = append(rows, row{name: name, unit: u, oldVal: ov, newVal: nv, delta: d})
		}
	}
	return rows
}

func formatVal(v float64, unit string) string {
	if unit == "allocs/op" || v == float64(int64(v)) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

func render(w io.Writer, rows []row) {
	if len(rows) == 0 {
		fmt.Fprintln(w, "benchdiff: no common benchmarks")
		return
	}
	fmt.Fprintf(w, "%-40s %-11s %14s %14s %9s\n", "name", "unit", "old", "new", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%-40s %-11s %14s %14s %+8.1f%%\n",
			r.name, r.unit, formatVal(r.oldVal, r.unit), formatVal(r.newVal, r.unit), r.delta)
	}
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD NEW")
		os.Exit(2)
	}
	read := func(path string) (map[string]*sample, []string) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		s, order, err := parseAny(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(1)
		}
		return s, order
	}
	oldS, _ := read(os.Args[1])
	newS, order := read(os.Args[2])
	render(os.Stdout, diff(oldS, newS, order))
}

// Command lakebench runs the reproduction experiments (DESIGN.md §3) and
// prints one result table per experiment. Use -only to run a subset and
// -seed to change the workload seed. When E12 (the ingest pipeline
// benchmark) runs, its machine-readable summary is written to the path
// given by -ingest-json so CI can archive throughput over time;
// -parallelism sets the worker count it benchmarks (0 = GOMAXPROCS).
// Likewise E13 (the read-path query benchmark) writes its summary to
// -query-json, and E14 (the write-path benchmark: group commit, atomic
// batches, vec-record rehydrate) writes its summary to -write-json, and E15
// (the cluster benchmark: scatter-gather search, WAL-shipping replication,
// failover reads) writes its summary to -cluster-json.
// -metrics-json dumps the process-wide metrics registry after the run, so a
// benchmark archive carries the low-level counters (fsync latencies, cache
// hits, ANN probe counts) alongside the headline numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"modellake/internal/experiments"
	"modellake/internal/obs"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E4)")
	seed := flag.Uint64("seed", 42, "workload seed")
	parallelism := flag.Int("parallelism", 0, "ingest workers for E12 (0 = GOMAXPROCS)")
	ingestJSON := flag.String("ingest-json", "BENCH_ingest.json", "where E12 writes its JSON summary ('' = skip)")
	queryJSON := flag.String("query-json", "BENCH_query.json", "where E13 writes its JSON summary ('' = skip)")
	writeJSON := flag.String("write-json", "BENCH_write.json", "where E14 writes its JSON summary ('' = skip)")
	clusterJSON := flag.String("cluster-json", "BENCH_cluster.json", "where E15 writes its JSON summary ('' = skip)")
	scaleJSON := flag.String("scale-json", "BENCH_scale.json", "where E16 writes its JSON summary ('' = skip)")
	keywordJSON := flag.String("keyword-json", "BENCH_keyword.json", "where E17 writes its JSON summary ('' = skip)")
	metricsJSON := flag.String("metrics-json", "", "where to write a post-run metrics snapshot ('' = skip)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := 0
	for _, ex := range experiments.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		start := time.Now()
		var t *experiments.Table
		var err error
		if ex.ID == "E12" {
			// E12 goes through the parameterized entry point so the
			// -parallelism flag applies and the JSON summary is captured.
			var res *experiments.IngestBenchResult
			t, res, err = experiments.RunE12Ingest(*seed, *parallelism)
			if err == nil && res != nil && *ingestJSON != "" {
				if werr := writeIngestJSON(*ingestJSON, res); werr != nil {
					fmt.Fprintf(os.Stderr, "E12: writing %s: %v\n", *ingestJSON, werr)
					failed++
				}
			}
		} else if ex.ID == "E13" {
			// E13 likewise captures its JSON summary for the benchmark
			// archive (-query-json).
			var res *experiments.QueryBenchResult
			t, res, err = experiments.RunE13Query(*seed, nil, 0)
			if err == nil && res != nil && *queryJSON != "" {
				if werr := writeBenchJSON(*queryJSON, res); werr != nil {
					fmt.Fprintf(os.Stderr, "E13: writing %s: %v\n", *queryJSON, werr)
					failed++
				}
			}
		} else if ex.ID == "E14" {
			// E14 (the write-path benchmark) captures its JSON summary for
			// the benchmark archive (-write-json).
			var res *experiments.WriteBenchResult
			t, res, err = experiments.RunE14Write(*seed, 0, 0)
			if err == nil && res != nil && *writeJSON != "" {
				if werr := writeBenchJSON(*writeJSON, res); werr != nil {
					fmt.Fprintf(os.Stderr, "E14: writing %s: %v\n", *writeJSON, werr)
					failed++
				}
			}
		} else if ex.ID == "E15" {
			// E15 (the cluster benchmark: scatter-gather search, replication,
			// failover reads) captures its JSON summary for the archive
			// (-cluster-json).
			var res *experiments.ClusterBenchResult
			t, res, err = experiments.RunE15Cluster(*seed, 0, 0)
			if err == nil && res != nil && *clusterJSON != "" {
				if werr := writeBenchJSON(*clusterJSON, res); werr != nil {
					fmt.Fprintf(os.Stderr, "E15: writing %s: %v\n", *clusterJSON, werr)
					failed++
				}
			}
		} else if ex.ID == "E16" {
			// E16 (the atlas-scale benchmark: int8 and product-quantized
			// rescore arms, disk-resident segments, streamed lake
			// generation) captures its JSON summary — per-arm QPS, resident
			// tier bytes, and peak heap — for the archive (-scale-json).
			var res *experiments.ScaleBenchResult
			t, res, err = experiments.RunE16Scale(*seed, nil, 0, 0)
			if err == nil && res != nil && *scaleJSON != "" {
				if werr := writeBenchJSON(*scaleJSON, res); werr != nil {
					fmt.Fprintf(os.Stderr, "E16: writing %s: %v\n", *scaleJSON, werr)
					failed++
				}
			}
		} else if ex.ID == "E17" {
			// E17 (the keyword benchmark: block-max pruned postings segments
			// vs the exhaustive map scorer) captures its JSON summary for the
			// archive (-keyword-json).
			var res *experiments.KeywordBenchResult
			t, res, err = experiments.RunE17Keyword(*seed, nil, 0)
			if err == nil && res != nil && *keywordJSON != "" {
				if werr := writeBenchJSON(*keywordJSON, res); werr != nil {
					fmt.Fprintf(os.Stderr, "E17: writing %s: %v\n", *keywordJSON, werr)
					failed++
				}
			}
		} else {
			t, err = ex.Run(*seed)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", ex.ID, err)
			failed++
			continue
		}
		t.Render(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
	if *metricsJSON != "" {
		if err := writeMetricsJSON(*metricsJSON); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *metricsJSON, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func writeMetricsJSON(path string) error {
	data, err := json.MarshalIndent(obs.Default().Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeIngestJSON(path string, res *experiments.IngestBenchResult) error {
	return writeBenchJSON(path, res)
}

func writeBenchJSON(path string, res any) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Command lakebench runs the reproduction experiments (DESIGN.md §3) and
// prints one result table per experiment. Use -only to run a subset and
// -seed to change the workload seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"modellake/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E4)")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := 0
	for _, ex := range experiments.All() {
		if len(want) > 0 && !want[ex.ID] {
			continue
		}
		start := time.Now()
		t, err := ex.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", ex.ID, err)
			failed++
			continue
		}
		t.Render(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n\n", ex.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// Package modellake is a model lake management system: a reference
// implementation of the vision in "Model Lakes" (Pal, Bau, Miller, EDBT
// 2025). A model lake stores many heterogeneous trained models together with
// their documentation, and supports the lake tasks the paper formalizes —
// model search (keyword, content-based, task-based, and declarative),
// version-graph reconstruction from weights, training-data attribution,
// benchmarking with verified ground truth — plus the applications built on
// them: documentation generation, auditing with upstream-risk propagation,
// and version-anchored citation.
//
// The package re-exports the library's public surface; subsystems live in
// internal/ packages. A minimal session:
//
//	lk, err := modellake.Open(modellake.Config{Dir: "my-lake"})
//	...
//	rec, err := lk.Ingest(m, card, modellake.RegisterOptions{Name: "legal-clf"})
//	hits := lk.SearchKeyword("legal summarization", 10)
//	res, err := lk.Query("FIND MODELS WHERE TRAINED ON DATASET 'legal/v1' LIMIT 5")
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package modellake

import (
	"modellake/internal/advisor"
	"modellake/internal/audit"
	"modellake/internal/benchmark"
	"modellake/internal/card"
	"modellake/internal/data"
	"modellake/internal/docgen"
	"modellake/internal/lake"
	"modellake/internal/lakegen"
	"modellake/internal/model"
	"modellake/internal/nn"
	"modellake/internal/provenance"
	"modellake/internal/registry"
	"modellake/internal/search"
	"modellake/internal/version"
	"modellake/internal/xrand"
)

// Lake is a model lake instance. See internal/lake for the full method set:
// Ingest, SearchKeyword, SearchByModel, SearchTask, SearchHybrid, Query,
// VersionGraph, Attribute, GenerateCard, Audit, Cite, Score, and friends.
type Lake = lake.Lake

// Config configures a lake (storage directory, probe space, index choice).
type Config = lake.Config

// Open creates or opens a model lake.
func Open(cfg Config) (*Lake, error) { return lake.Open(cfg) }

// Model is the lake's five-tuple model representation M = (D, A, f*, θ, p_θ).
type Model = model.Model

// History is the (D, A) component of a model: its training data and
// algorithm, as documented.
type History = model.History

// Handle is a (possibly viewpoint-restricted) window onto a model.
type Handle = model.Handle

// NewHandle returns an unrestricted handle for a model.
func NewHandle(m *Model) *Handle { return model.NewHandle(m) }

// Card is a structured model card.
type Card = card.Card

// RegisterOptions carries the declared metadata accompanying an ingest.
type RegisterOptions = registry.RegisterOptions

// IngestItem is one model of a batch ingest (Lake.IngestAll), which embeds
// and indexes the batch through a bounded worker pool.
type IngestItem = lake.IngestItem

// Record is a registry catalog entry.
type Record = registry.Record

// Benchmark couples a dataset with a scoring metric.
type Benchmark = benchmark.Benchmark

// Hit is a ranked search result.
type Hit = search.Hit

// TaskExample is one labeled example of a task function for task search.
type TaskExample = search.TaskExample

// Graph is a directed model version graph.
type Graph = version.Graph

// Citation is a version-graph-anchored model citation.
type Citation = provenance.Citation

// Draft is an auto-generated model-card draft with evidence and flags.
type Draft = docgen.Draft

// AuditReport is a completed audit.
type AuditReport = audit.Report

// Advice is a ranked, caveated model recommendation for a user task.
type Advice = advisor.Advice

// Advise recommends lake models for the task the labeled examples describe
// (§5's model-inference component).
func Advise(lk *Lake, examples []TaskExample, k int) (*Advice, error) {
	return advisor.Advise(lk, examples, k)
}

// Dataset is a labeled feature dataset.
type Dataset = data.Dataset

// Domain is a stable generative source of classification data.
type Domain = data.Domain

// NewDomain creates a domain with deterministic class structure.
func NewDomain(name string, dim, classes int, seed uint64) *Domain {
	return data.NewDomain(name, dim, classes, seed)
}

// RNG is the deterministic random number generator used throughout the
// library.
type RNG = xrand.RNG

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return xrand.New(seed) }

// MLP is the neural-network substrate for lake models.
type MLP = nn.MLP

// TrainConfig configures model training.
type TrainConfig = nn.TrainConfig

// NewMLP builds a randomly initialized network.
func NewMLP(sizes []int, seed uint64) *MLP {
	return nn.NewMLP(sizes, nn.ReLU, xrand.New(seed))
}

// Train trains a model on a dataset and returns the final mean loss.
func Train(m *MLP, ds *Dataset, cfg TrainConfig) (float64, error) {
	return nn.Train(m, ds, cfg)
}

// DefaultTrainConfig returns a training configuration suitable for the small
// synthetic domains.
func DefaultTrainConfig() TrainConfig { return nn.DefaultTrainConfig() }

// LakeSpec configures synthetic benchmark-lake generation.
type LakeSpec = lakegen.Spec

// Population is a generated benchmark lake with verified ground truth.
type Population = lakegen.Population

// GenerateLake synthesizes a benchmark lake: model families with known
// lineage, domains, and documentation quality.
func GenerateLake(spec LakeSpec) (*Population, error) { return lakegen.Generate(spec) }

// DefaultLakeSpec returns a small benchmark-lake specification.
func DefaultLakeSpec(seed uint64) LakeSpec { return lakegen.DefaultSpec(seed) }
